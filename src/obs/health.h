// Health watchdog: a sampler thread, a metrics time-series ring, and
// rule-based detectors that turn raw telemetry into verdicts.
//
// PR 8's metrics layer can tell an operator *what* the numbers are; it
// cannot notice that epoch reclamation has silently stalled, that WAL
// group commit has regressed 10x, or that the router has drifted into
// binary-search fallback. This header closes that loop:
//
//   - SampledMetrics is one fixed-shape snapshot of the health-relevant
//     registry state (epoch counters, WAL commit-wait histogram buckets,
//     write-gate waits, router hit/fallback counts, per-shard op counts,
//     slow-op ring capture count).
//   - SampleRing publishes snapshots through the same seqlock idiom as
//     SlowOpRing, generalized to a word-array payload: the writer marks
//     the slot odd, stores sizeof(SampledMetrics)/8 relaxed words, and
//     marks it even; readers copy and re-check. Readers never block the
//     sampler and never observe a torn snapshot.
//   - Detectors evaluate over *deltas* between consecutive samples (the
//     incremental-evaluation idiom from modular Datalog materialisation:
//     never re-derive from absolute counters what the previous sample
//     already paid for). Each produces a HealthVerdict (level, offending
//     metric, observed vs threshold); the merged HealthReport's level is
//     the max across detectors.
//   - Every per-detector level change appends one kHealthTransition event
//     to the journal (obs/journal.h), so "when did this start" has an
//     answer with a timestamp and the neighbouring structural events.
//
// The WAL commit-wait detector is the only stateful one beyond last-sample
// deltas: it maintains an EWMA baseline of the *windowed* p99 (computed by
// folding per-sample bucket-count deltas back into a Log2Histogram) and
// fires on regression relative to that baseline. The baseline only
// absorbs windows judged healthy — a sustained regression keeps firing
// instead of teaching the baseline that slow is normal.
//
// Threading: one mutex serializes EvaluateSample (sampler thread, manual
// SampleNow, and synthetic-injection tests); the ring and report are
// published lock-free for readers. The sampler thread ticks on a
// condition variable and *skips* sampling while obs::Enabled() is false —
// that is what lets bench/obs_overhead.cc run the thread through both
// arms of its A/B harness and charge the watchdog's cost only to the
// enabled arm.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/histogram.h"

namespace alex::obs {

// ---------------------------------------------------------------------------
// The time-series sample.

/// One snapshot of the health-relevant registry state. Trivially copyable
/// and 8-byte-word-shaped by construction so SampleRing can publish it as
/// an array of relaxed atomic words.
struct SampledMetrics {
  uint64_t ts_ns = 0;

  // Epoch-based reclamation.
  uint64_t epoch_retired = 0;
  uint64_t epoch_freed = 0;
  uint64_t epoch_advances = 0;
  uint64_t epoch_advance_stalls = 0;
  int64_t epoch_retired_unreclaimed = 0;  // gauge
  int64_t epoch_global = 0;               // gauge

  // WAL group commit: cumulative count/sum/max plus the full cumulative
  // bucket vector, so a *windowed* latency distribution falls out of
  // bucket deltas between two samples.
  uint64_t wal_commit_count = 0;
  uint64_t wal_commit_sum_ns = 0;
  uint64_t wal_commit_max_ns = 0;
  uint64_t wal_commit_buckets[util::Log2Histogram::kNumBuckets] = {};

  // Per-shard write gate.
  uint64_t gate_contended = 0;
  uint64_t gate_wait_count = 0;
  uint64_t gate_wait_sum_ns = 0;

  // Shard router.
  uint64_t router_hits = 0;
  uint64_t router_fallbacks = 0;

  // Slow-op ring + shard shape.
  uint64_t slow_ops_captured = 0;
  int64_t size_skew_x100 = 0;  // gauge, largest/mean * 100

  // Per-shard-slot cumulative op counts (slot kMaxTrackedShards is the
  // cross-shard/overflow slot; excluded from traffic skew).
  uint64_t shard_ops[MetricsRegistry::kMaxTrackedShards + 1] = {};
  uint64_t total_ops = 0;

  // Cold-tier block cache (tier/block_cache.h).
  uint64_t tier_cache_hits = 0;
  uint64_t tier_cache_misses = 0;
};

static_assert(std::is_trivially_copyable<SampledMetrics>::value,
              "SampleRing publishes SampledMetrics as raw words");
static_assert(sizeof(SampledMetrics) % sizeof(uint64_t) == 0,
              "SampledMetrics must be a whole number of 64-bit words");

/// Fixed-size time-series ring for SampledMetrics: the SlowOpRing seqlock
/// protocol generalized to a word-array payload. Single writer (the
/// monitor serializes Push under its mutex); any number of lock-free
/// readers.
class SampleRing {
 public:
  static constexpr size_t kCapacity = 64;  // power of two
  static constexpr size_t kWords = sizeof(SampledMetrics) / sizeof(uint64_t);

  /// Total samples ever pushed (the ring keeps the newest kCapacity).
  uint64_t pushed() const { return next_.load(std::memory_order_relaxed); }

  void Push(const SampledMetrics& sample) {
    uint64_t words[kWords];
    std::memcpy(words, &sample, sizeof(sample));
    const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[ticket & (kCapacity - 1)];
    s.seq.store(2 * ticket + 1, std::memory_order_release);
    for (size_t w = 0; w < kWords; ++w) {
      s.words[w].store(words[w], std::memory_order_relaxed);
    }
    s.seq.store(2 * ticket + 2, std::memory_order_release);
  }

  /// Stable samples, oldest first.
  std::vector<SampledMetrics> Snapshot() const {
    struct Keyed {
      uint64_t ticket;
      SampledMetrics sample;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(kCapacity);
    for (const Slot& s : slots_) {
      const uint64_t seq = s.seq.load(std::memory_order_acquire);
      if (seq == 0 || (seq & 1) != 0) continue;  // empty or being written
      uint64_t words[kWords];
      for (size_t w = 0; w < kWords; ++w) {
        words[w] = s.words[w].load(std::memory_order_relaxed);
      }
      if (s.seq.load(std::memory_order_acquire) != seq) continue;  // reused
      Keyed k;
      k.ticket = seq / 2 - 1;
      std::memcpy(&k.sample, words, sizeof(k.sample));
      keyed.push_back(k);
    }
    std::sort(keyed.begin(), keyed.end(),
              [](const Keyed& a, const Keyed& b) { return a.ticket < b.ticket; });
    std::vector<SampledMetrics> out;
    out.reserve(keyed.size());
    for (const Keyed& k : keyed) out.push_back(k.sample);
    return out;
  }

  /// Test-only; must not race Push().
  void Reset() {
    next_.store(0, std::memory_order_relaxed);
    for (Slot& s : slots_) s.seq.store(0, std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::array<std::atomic<uint64_t>, kWords> words{};
  };

  std::atomic<uint64_t> next_{0};
  std::array<Slot, kCapacity> slots_{};
};

// ---------------------------------------------------------------------------
// Verdicts.

enum class HealthLevel : uint8_t { kOk = 0, kWarn = 1, kCritical = 2 };

inline const char* LevelName(HealthLevel level) {
  switch (level) {
    case HealthLevel::kOk: return "ok";
    case HealthLevel::kWarn: return "warn";
    case HealthLevel::kCritical: return "critical";
  }
  return "?";
}

enum class HealthDetector : uint8_t {
  kEpochStall = 0,    // reclamation pinned: stalls without advances
  kRetiredGrowth,     // retired-unreclaimed backlog beyond bounds
  kWalCommitWait,     // windowed commit-wait p99 vs EWMA baseline
  kWriteGateWait,     // mean contended write-gate wait spike
  kRouterFallback,    // model-fallback fraction of routed lookups
  kShardSkew,         // per-shard size or traffic imbalance
  kSlowOpBurst,       // slow-op ring captures per window
  kTierCacheMiss,     // cold-tier cache miss ratio vs EWMA baseline
};
constexpr size_t kNumHealthDetectors = 8;

inline const char* DetectorName(HealthDetector d) {
  switch (d) {
    case HealthDetector::kEpochStall: return "epoch_stall";
    case HealthDetector::kRetiredGrowth: return "retired_growth";
    case HealthDetector::kWalCommitWait: return "wal_commit_wait";
    case HealthDetector::kWriteGateWait: return "write_gate_wait";
    case HealthDetector::kRouterFallback: return "router_fallback";
    case HealthDetector::kShardSkew: return "shard_skew";
    case HealthDetector::kSlowOpBurst: return "slow_op_burst";
    case HealthDetector::kTierCacheMiss: return "tier_cache_miss";
  }
  return "?";
}

/// One detector's judgement of one sample window.
struct HealthVerdict {
  HealthDetector detector = HealthDetector::kEpochStall;
  HealthLevel level = HealthLevel::kOk;
  const char* metric = "";  // offending metric (registry name)
  double observed = 0.0;
  double threshold = 0.0;  // the warn threshold that applied
};

inline std::string VerdictToJson(const HealthVerdict& v) {
  return std::string("{\"detector\": \"") + DetectorName(v.detector) +
         "\", \"level\": \"" + LevelName(v.level) + "\", \"metric\": \"" +
         v.metric + "\", \"observed\": " + std::to_string(v.observed) +
         ", \"threshold\": " + std::to_string(v.threshold) + "}";
}

/// The merged judgement: worst level across detectors, plus headline
/// rates for the newest window.
struct HealthReport {
  HealthLevel level = HealthLevel::kOk;
  uint64_t samples = 0;   // samples evaluated since start/reset
  uint64_t ts_ns = 0;     // timestamp of the newest sample
  uint64_t window_ns = 0; // newest inter-sample window
  double ops_per_sec = 0.0;
  double wal_commits_per_sec = 0.0;
  std::array<HealthVerdict, kNumHealthDetectors> verdicts{};

  std::string ToJson() const {
    std::string out = std::string("{\"level\": \"") + LevelName(level) +
                      "\", \"samples\": " + std::to_string(samples) +
                      ", \"ts_ns\": " + std::to_string(ts_ns) +
                      ", \"window_ns\": " + std::to_string(window_ns) +
                      ", \"ops_per_sec\": " + std::to_string(ops_per_sec) +
                      ", \"wal_commits_per_sec\": " +
                      std::to_string(wal_commits_per_sec) + ", \"verdicts\": [";
    for (size_t i = 0; i < verdicts.size(); ++i) {
      if (i > 0) out += ", ";
      out += VerdictToJson(verdicts[i]);
    }
    out += "]}";
    return out;
  }
};

// ---------------------------------------------------------------------------
// Options.

/// Detector thresholds and sampler cadence. Defaults are deliberately
/// conservative multiples of healthy steady-state behaviour; every field
/// is plain data so tests can drive rules across their edges directly.
struct HealthOptions {
  /// Sampler cadence. ALEX_OBS_SAMPLE_MS overrides via FromEnv().
  uint64_t sample_interval_ms = 100;

  // kEpochStall: fires only when a window saw reclamation *attempts* stall
  // with zero successful advances while a backlog exists.
  uint64_t epoch_stall_warn = 4;
  uint64_t epoch_stall_critical = 16;

  // kRetiredGrowth: absolute retired-but-unreclaimed backlog.
  int64_t retired_warn = 4096;
  int64_t retired_critical = 65536;

  // kWalCommitWait: windowed p99 vs EWMA baseline. The floor keeps noise
  // in sub-100us commit waits from ever firing the rule.
  double wal_p99_warn_factor = 4.0;
  double wal_p99_critical_factor = 16.0;
  uint64_t wal_p99_floor_ns = 100'000;
  uint64_t wal_min_window_commits = 16;
  double wal_baseline_alpha = 0.25;  // EWMA weight of the newest Ok window

  // kWriteGateWait: mean wait of *contended* gate acquisitions.
  uint64_t gate_wait_warn_ns = 1'000'000;
  uint64_t gate_wait_critical_ns = 10'000'000;
  uint64_t gate_min_contended = 4;

  // kRouterFallback: fallback fraction of routed lookups.
  double fallback_warn_rate = 0.25;
  double fallback_critical_rate = 0.75;
  uint64_t fallback_min_routes = 64;

  // kShardSkew: size skew from the gauge (largest/mean x100, matching the
  // rebalancer's trigger shape) and traffic skew from per-shard op deltas.
  int64_t skew_warn_x100 = 400;
  int64_t skew_critical_x100 = 1600;
  uint64_t traffic_min_window_ops = 256;

  // kSlowOpBurst: ring captures per window.
  uint64_t slow_op_warn = 16;
  uint64_t slow_op_critical = 64;

  // kTierCacheMiss: windowed cold-tier miss ratio vs EWMA baseline (the
  // kWalCommitWait shape applied to a rate instead of a latency). The
  // floor keeps a cold cache's first touches from firing the rule.
  double tier_miss_warn_factor = 4.0;
  double tier_miss_critical_factor = 16.0;
  double tier_miss_floor = 0.02;
  uint64_t tier_min_window_lookups = 64;
  double tier_baseline_alpha = 0.25;

  static HealthOptions FromEnv() {
    HealthOptions opt;
    opt.sample_interval_ms =
        std::max<uint64_t>(1, EnvOverrideU64("ALEX_OBS_SAMPLE_MS",
                                             opt.sample_interval_ms));
    return opt;
  }
};

// ---------------------------------------------------------------------------
// The monitor.

class HealthMonitor {
 public:
  /// The process-wide monitor, deliberately leaked like the registry.
  static HealthMonitor& Global() {
    static HealthMonitor* global = new HealthMonitor(HealthOptions::FromEnv());
    return *global;
  }

  explicit HealthMonitor(HealthOptions options = HealthOptions::FromEnv())
      : options_(options),
        interval_ms_(options.sample_interval_ms),
        registry_(&MetricsRegistry::Global()) {
    // Resolve every watched metric once; registration is idempotent and
    // the pointers are valid forever, so Collect() never takes the
    // registry mutex.
    epoch_retired_ = registry_->GetCounter("epoch.retired");
    epoch_freed_ = registry_->GetCounter("epoch.freed");
    epoch_advances_ = registry_->GetCounter("epoch.advances");
    epoch_advance_stalls_ = registry_->GetCounter("epoch.advance_stalls");
    epoch_retired_unreclaimed_ =
        registry_->GetGauge("epoch.retired_unreclaimed");
    epoch_global_ = registry_->GetGauge("epoch.global_epoch");
    wal_commit_wait_ = registry_->GetHistogram("wal.commit_wait_ns");
    gate_contended_ = registry_->GetCounter("shard.write_gate_contended");
    gate_wait_ = registry_->GetHistogram("shard.write_gate_wait_ns");
    router_hits_ = registry_->GetCounter("shard.router_model_hits");
    router_fallbacks_ = registry_->GetCounter("shard.router_fallbacks");
    size_skew_ = registry_->GetGauge("shard.size_skew_x100");
    tier_cache_hits_ = registry_->GetCounter("tier.cache_hits");
    tier_cache_misses_ = registry_->GetCounter("tier.cache_misses");
    transitions_ = registry_->GetCounter("health.transitions");
  }

  ~HealthMonitor() { Stop(); }
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  const HealthOptions& options() const { return options_; }
  void set_options(const HealthOptions& options) {
    std::lock_guard<std::mutex> lock(mutex_);
    options_ = options;
    interval_ms_.store(options.sample_interval_ms,
                       std::memory_order_relaxed);
  }

  /// Runtime cadence setter; the running sampler picks it up on its next
  /// tick.
  void SetIntervalMs(uint64_t ms) {
    interval_ms_.store(std::max<uint64_t>(1, ms), std::memory_order_relaxed);
  }
  uint64_t interval_ms() const {
    return interval_ms_.load(std::memory_order_relaxed);
  }

  /// Samples evaluated since construction/reset (counts manual SampleNow
  /// and injected samples too; the sampler thread's disabled-arm ticks do
  /// not sample and so do not count).
  uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }

  const SampleRing& ring() const { return ring_; }

  /// Collects one snapshot from the live registry and evaluates it.
  void SampleNow() { EvaluateSample(Collect()); }

  /// Evaluates one sample against the previous one: pushes it into the
  /// time-series ring, runs every detector over the deltas, publishes the
  /// merged report, and journals one kHealthTransition event per detector
  /// whose level changed. Public so tests can inject synthetic samples
  /// and drive each rule across its edges deterministically.
  void EvaluateSample(const SampledMetrics& sample) {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.Push(sample);

    HealthReport report;
    report.samples = samples_.load(std::memory_order_relaxed) + 1;
    report.ts_ns = sample.ts_ns;

    if (have_last_) {
      const SampledMetrics& prev = last_;
      report.window_ns =
          sample.ts_ns > prev.ts_ns ? sample.ts_ns - prev.ts_ns : 0;
      const double window_s =
          report.window_ns > 0 ? static_cast<double>(report.window_ns) / 1e9
                               : 0.0;
      const uint64_t d_ops = Delta(sample.total_ops, prev.total_ops);
      const uint64_t d_commits =
          Delta(sample.wal_commit_count, prev.wal_commit_count);
      if (window_s > 0) {
        report.ops_per_sec = static_cast<double>(d_ops) / window_s;
        report.wal_commits_per_sec = static_cast<double>(d_commits) / window_s;
      }
      report.verdicts[0] = JudgeEpochStall(prev, sample);
      report.verdicts[1] = JudgeRetiredGrowth(sample);
      report.verdicts[2] = JudgeWalCommitWait(prev, sample);
      report.verdicts[3] = JudgeWriteGateWait(prev, sample);
      report.verdicts[4] = JudgeRouterFallback(prev, sample);
      report.verdicts[5] = JudgeShardSkew(prev, sample);
      report.verdicts[6] = JudgeSlowOpBurst(prev, sample);
      report.verdicts[7] = JudgeTierCacheMiss(prev, sample);
    } else {
      // First sample: no window to judge; all detectors report Ok with
      // their identities filled in.
      for (size_t i = 0; i < kNumHealthDetectors; ++i) {
        report.verdicts[i].detector = static_cast<HealthDetector>(i);
      }
      report.verdicts[0].metric = "epoch.advance_stalls";
      report.verdicts[1].metric = "epoch.retired_unreclaimed";
      report.verdicts[2].metric = "wal.commit_wait_ns";
      report.verdicts[3].metric = "shard.write_gate_wait_ns";
      report.verdicts[4].metric = "shard.router_fallbacks";
      report.verdicts[5].metric = "shard.size_skew_x100";
      report.verdicts[6].metric = "slow_ops.captured";
      report.verdicts[7].metric = "tier.cache_misses";
    }

    for (const HealthVerdict& v : report.verdicts) {
      report.level = std::max(report.level, v.level);
    }

    // Journal exactly one transition event per detector edge.
    for (size_t i = 0; i < kNumHealthDetectors; ++i) {
      const HealthLevel prev_level = levels_[i];
      const HealthLevel new_level = report.verdicts[i].level;
      if (new_level != prev_level) {
        GlobalJournal().Append(
            EventType::kHealthTransition, kShardAll, /*wal_id=*/0, /*lsn=*/0,
            /*a=*/static_cast<int64_t>(i),
            /*b=*/static_cast<int64_t>(prev_level) * 256 +
                static_cast<int64_t>(new_level));
        transitions_->Increment();
        levels_[i] = new_level;
      }
    }

    last_ = sample;
    have_last_ = true;
    samples_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> rlock(report_mutex_);
      report_ = report;
    }
  }

  HealthReport Report() const {
    std::lock_guard<std::mutex> lock(report_mutex_);
    return report_;
  }
  std::string ReportJson() const { return Report().ToJson(); }

  /// Starts the background sampler thread (no-op if already running).
  /// `interval_ms` overrides the cadence when nonzero. The thread ticks
  /// even while obs is disabled but only samples when Enabled() — so an
  /// A/B harness flipping the flag charges the watchdog's cost to the
  /// enabled arm only.
  bool Start(uint64_t interval_ms = 0) {
    std::lock_guard<std::mutex> lock(thread_control_mutex_);
    if (thread_.joinable()) return false;
    if (interval_ms > 0) SetIntervalMs(interval_ms);
    stop_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { SamplerLoop(); });
    return true;
  }

  void Stop() {
    std::lock_guard<std::mutex> lock(thread_control_mutex_);
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> tick(tick_mutex_);
      stop_.store(true, std::memory_order_relaxed);
    }
    tick_cv_.notify_all();
    thread_.join();
  }

  bool running() const {
    std::lock_guard<std::mutex> lock(thread_control_mutex_);
    return thread_.joinable();
  }

  /// Clears all evaluation state (samples, ring, baseline, levels,
  /// report). Test-only; must not run concurrently with the sampler
  /// thread — Stop() first.
  void ResetForTest() {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.Reset();
    have_last_ = false;
    last_ = SampledMetrics{};
    samples_.store(0, std::memory_order_relaxed);
    wal_baseline_p99_ns_ = 0.0;
    tier_miss_baseline_ = 0.0;
    levels_.fill(HealthLevel::kOk);
    std::lock_guard<std::mutex> rlock(report_mutex_);
    report_ = HealthReport{};
  }

  /// One live snapshot of the watched registry metrics.
  SampledMetrics Collect() const {
    SampledMetrics s;
    s.ts_ns = TicksToNs(NowTicks());
    s.epoch_retired = epoch_retired_->Load();
    s.epoch_freed = epoch_freed_->Load();
    s.epoch_advances = epoch_advances_->Load();
    s.epoch_advance_stalls = epoch_advance_stalls_->Load();
    s.epoch_retired_unreclaimed = epoch_retired_unreclaimed_->Load();
    s.epoch_global = epoch_global_->Load();
    const util::Log2Histogram wal = wal_commit_wait_->Snapshot();
    s.wal_commit_count = wal.Count();
    s.wal_commit_sum_ns = wal.Sum();
    s.wal_commit_max_ns = wal.Max();
    for (int b = 0; b < util::Log2Histogram::kNumBuckets; ++b) {
      s.wal_commit_buckets[b] = wal.count(b);
    }
    s.gate_contended = gate_contended_->Load();
    s.gate_wait_count = gate_wait_->Count();
    s.gate_wait_sum_ns = gate_wait_->Sum();
    s.router_hits = router_hits_->Load();
    s.router_fallbacks = router_fallbacks_->Load();
    s.slow_ops_captured = registry_->slow_ops().captured();
    s.size_skew_x100 = size_skew_->Load();
    s.tier_cache_hits = tier_cache_hits_->Load();
    s.tier_cache_misses = tier_cache_misses_->Load();
    for (size_t slot = 0; slot <= MetricsRegistry::kMaxTrackedShards;
         ++slot) {
      s.shard_ops[slot] = registry_->OpCountForShardSlot(slot);
      s.total_ops += s.shard_ops[slot];
    }
    return s;
  }

 private:
  static uint64_t Delta(uint64_t cur, uint64_t prev) {
    return cur >= prev ? cur - prev : 0;  // tolerate test-only resets
  }

  static HealthVerdict Verdict(HealthDetector d, HealthLevel level,
                               const char* metric, double observed,
                               double threshold) {
    HealthVerdict v;
    v.detector = d;
    v.level = level;
    v.metric = metric;
    v.observed = observed;
    v.threshold = threshold;
    return v;
  }

  HealthVerdict JudgeEpochStall(const SampledMetrics& prev,
                                const SampledMetrics& cur) const {
    const uint64_t stalls =
        Delta(cur.epoch_advance_stalls, prev.epoch_advance_stalls);
    const uint64_t advances = Delta(cur.epoch_advances, prev.epoch_advances);
    HealthLevel level = HealthLevel::kOk;
    // A stall only matters when nothing advanced and a backlog exists: a
    // window with both stalls and advances is ordinary contention.
    if (advances == 0 && cur.epoch_retired_unreclaimed > 0) {
      if (stalls >= options_.epoch_stall_critical) {
        level = HealthLevel::kCritical;
      } else if (stalls >= options_.epoch_stall_warn) {
        level = HealthLevel::kWarn;
      }
    }
    return Verdict(HealthDetector::kEpochStall, level, "epoch.advance_stalls",
                   static_cast<double>(stalls),
                   static_cast<double>(options_.epoch_stall_warn));
  }

  HealthVerdict JudgeRetiredGrowth(const SampledMetrics& cur) const {
    const int64_t backlog = cur.epoch_retired_unreclaimed;
    HealthLevel level = HealthLevel::kOk;
    if (backlog >= options_.retired_critical) {
      level = HealthLevel::kCritical;
    } else if (backlog >= options_.retired_warn) {
      level = HealthLevel::kWarn;
    }
    return Verdict(HealthDetector::kRetiredGrowth, level,
                   "epoch.retired_unreclaimed", static_cast<double>(backlog),
                   static_cast<double>(options_.retired_warn));
  }

  HealthVerdict JudgeWalCommitWait(const SampledMetrics& prev,
                                   const SampledMetrics& cur) {
    const uint64_t commits =
        Delta(cur.wal_commit_count, prev.wal_commit_count);
    HealthLevel level = HealthLevel::kOk;
    double p99 = 0.0;
    double warn_at = std::max(
        static_cast<double>(options_.wal_p99_floor_ns),
        wal_baseline_p99_ns_ * options_.wal_p99_warn_factor);
    if (commits >= options_.wal_min_window_commits) {
      // Reconstruct the window's distribution from bucket deltas. The
      // cumulative max is the only max available; Quantile clamps against
      // it, which can only under-report the windowed p99 — never inflate.
      uint64_t bucket_delta[util::Log2Histogram::kNumBuckets];
      for (int b = 0; b < util::Log2Histogram::kNumBuckets; ++b) {
        bucket_delta[b] =
            Delta(cur.wal_commit_buckets[b], prev.wal_commit_buckets[b]);
      }
      util::Log2Histogram window;
      window.AddFolded(bucket_delta, util::Log2Histogram::kNumBuckets,
                       Delta(cur.wal_commit_sum_ns, prev.wal_commit_sum_ns),
                       cur.wal_commit_max_ns);
      p99 = static_cast<double>(window.Quantile(0.99));
      if (wal_baseline_p99_ns_ <= 0.0) {
        // First qualifying window seeds the baseline and is Ok by
        // definition: there is nothing to regress from yet.
        wal_baseline_p99_ns_ = p99;
      } else {
        const double crit_at = std::max(
            static_cast<double>(options_.wal_p99_floor_ns),
            wal_baseline_p99_ns_ * options_.wal_p99_critical_factor);
        if (p99 >= crit_at) {
          level = HealthLevel::kCritical;
        } else if (p99 >= warn_at) {
          level = HealthLevel::kWarn;
        } else {
          // Only healthy windows teach the baseline, so a sustained
          // regression keeps firing instead of becoming the new normal.
          wal_baseline_p99_ns_ =
              (1.0 - options_.wal_baseline_alpha) * wal_baseline_p99_ns_ +
              options_.wal_baseline_alpha * p99;
        }
      }
      warn_at = std::max(static_cast<double>(options_.wal_p99_floor_ns),
                         wal_baseline_p99_ns_ * options_.wal_p99_warn_factor);
    }
    return Verdict(HealthDetector::kWalCommitWait, level, "wal.commit_wait_ns",
                   p99, warn_at);
  }

  HealthVerdict JudgeWriteGateWait(const SampledMetrics& prev,
                                   const SampledMetrics& cur) const {
    const uint64_t contended = Delta(cur.gate_contended, prev.gate_contended);
    const uint64_t waits = Delta(cur.gate_wait_count, prev.gate_wait_count);
    const uint64_t wait_ns =
        Delta(cur.gate_wait_sum_ns, prev.gate_wait_sum_ns);
    HealthLevel level = HealthLevel::kOk;
    double mean_ns = 0.0;
    if (contended >= options_.gate_min_contended && waits > 0) {
      mean_ns = static_cast<double>(wait_ns) / static_cast<double>(waits);
      if (mean_ns >= static_cast<double>(options_.gate_wait_critical_ns)) {
        level = HealthLevel::kCritical;
      } else if (mean_ns >= static_cast<double>(options_.gate_wait_warn_ns)) {
        level = HealthLevel::kWarn;
      }
    }
    return Verdict(HealthDetector::kWriteGateWait, level,
                   "shard.write_gate_wait_ns", mean_ns,
                   static_cast<double>(options_.gate_wait_warn_ns));
  }

  HealthVerdict JudgeRouterFallback(const SampledMetrics& prev,
                                    const SampledMetrics& cur) const {
    const uint64_t hits = Delta(cur.router_hits, prev.router_hits);
    const uint64_t fallbacks =
        Delta(cur.router_fallbacks, prev.router_fallbacks);
    const uint64_t routes = hits + fallbacks;
    HealthLevel level = HealthLevel::kOk;
    double rate = 0.0;
    if (routes >= options_.fallback_min_routes) {
      rate = static_cast<double>(fallbacks) / static_cast<double>(routes);
      if (rate >= options_.fallback_critical_rate) {
        level = HealthLevel::kCritical;
      } else if (rate >= options_.fallback_warn_rate) {
        level = HealthLevel::kWarn;
      }
    }
    return Verdict(HealthDetector::kRouterFallback, level,
                   "shard.router_fallbacks", rate,
                   options_.fallback_warn_rate);
  }

  HealthVerdict JudgeShardSkew(const SampledMetrics& prev,
                               const SampledMetrics& cur) const {
    // Size skew: the rebalancer's own gauge (largest/mean x100).
    int64_t worst_x100 = cur.size_skew_x100;
    const char* metric = "shard.size_skew_x100";
    // Traffic skew: per-shard op deltas over the window, overflow slot
    // excluded (it mixes cross-shard ops from every shard).
    uint64_t window_ops = 0, max_ops = 0;
    size_t active = 0;
    for (size_t slot = 0; slot < MetricsRegistry::kMaxTrackedShards; ++slot) {
      const uint64_t d = Delta(cur.shard_ops[slot], prev.shard_ops[slot]);
      if (d > 0) {
        ++active;
        window_ops += d;
        max_ops = std::max(max_ops, d);
      }
    }
    if (active >= 2 && window_ops >= options_.traffic_min_window_ops) {
      const double mean =
          static_cast<double>(window_ops) / static_cast<double>(active);
      const int64_t traffic_x100 =
          static_cast<int64_t>(100.0 * static_cast<double>(max_ops) / mean);
      if (traffic_x100 > worst_x100) {
        worst_x100 = traffic_x100;
        metric = "op.shard_traffic_skew_x100";
      }
    }
    HealthLevel level = HealthLevel::kOk;
    if (worst_x100 >= options_.skew_critical_x100) {
      level = HealthLevel::kCritical;
    } else if (worst_x100 >= options_.skew_warn_x100) {
      level = HealthLevel::kWarn;
    }
    return Verdict(HealthDetector::kShardSkew, level, metric,
                   static_cast<double>(worst_x100),
                   static_cast<double>(options_.skew_warn_x100));
  }

  HealthVerdict JudgeSlowOpBurst(const SampledMetrics& prev,
                                 const SampledMetrics& cur) const {
    const uint64_t burst =
        Delta(cur.slow_ops_captured, prev.slow_ops_captured);
    HealthLevel level = HealthLevel::kOk;
    if (burst >= options_.slow_op_critical) {
      level = HealthLevel::kCritical;
    } else if (burst >= options_.slow_op_warn) {
      level = HealthLevel::kWarn;
    }
    return Verdict(HealthDetector::kSlowOpBurst, level, "slow_ops.captured",
                   static_cast<double>(burst),
                   static_cast<double>(options_.slow_op_warn));
  }

  HealthVerdict JudgeTierCacheMiss(const SampledMetrics& prev,
                                   const SampledMetrics& cur) {
    const uint64_t hits = Delta(cur.tier_cache_hits, prev.tier_cache_hits);
    const uint64_t misses =
        Delta(cur.tier_cache_misses, prev.tier_cache_misses);
    const uint64_t lookups = hits + misses;
    HealthLevel level = HealthLevel::kOk;
    double ratio = 0.0;
    double warn_at =
        std::max(options_.tier_miss_floor,
                 tier_miss_baseline_ * options_.tier_miss_warn_factor);
    if (lookups >= options_.tier_min_window_lookups) {
      ratio = static_cast<double>(misses) / static_cast<double>(lookups);
      if (tier_miss_baseline_ <= 0.0) {
        // First qualifying window seeds the baseline and is Ok by
        // definition, exactly like the WAL commit-wait rule.
        tier_miss_baseline_ = ratio;
      } else {
        const double crit_at = std::max(
            options_.tier_miss_floor,
            tier_miss_baseline_ * options_.tier_miss_critical_factor);
        if (ratio >= crit_at) {
          level = HealthLevel::kCritical;
        } else if (ratio >= warn_at) {
          level = HealthLevel::kWarn;
        } else {
          // Only healthy windows teach the baseline: a working set that
          // outgrew the cache keeps firing instead of normalizing.
          tier_miss_baseline_ =
              (1.0 - options_.tier_baseline_alpha) * tier_miss_baseline_ +
              options_.tier_baseline_alpha * ratio;
        }
      }
      warn_at =
          std::max(options_.tier_miss_floor,
                   tier_miss_baseline_ * options_.tier_miss_warn_factor);
    }
    return Verdict(HealthDetector::kTierCacheMiss, level,
                   "tier.cache_misses", ratio, warn_at);
  }

  void SamplerLoop() {
    std::unique_lock<std::mutex> lock(tick_mutex_);
    while (!stop_.load(std::memory_order_relaxed)) {
      const uint64_t ms = interval_ms();
      tick_cv_.wait_for(lock, std::chrono::milliseconds(ms), [this] {
        return stop_.load(std::memory_order_relaxed);
      });
      if (stop_.load(std::memory_order_relaxed)) break;
      // Tick-skip while disabled: the thread exists in both arms of an
      // A/B harness, but sampling cost lands only in the enabled arm.
      if (!Enabled()) continue;
      lock.unlock();
      SampleNow();
      lock.lock();
    }
  }

  HealthOptions options_;  // mutated only under mutex_
  std::atomic<uint64_t> interval_ms_;
  MetricsRegistry* const registry_;

  // Watched metrics, resolved once.
  Counter* epoch_retired_ = nullptr;
  Counter* epoch_freed_ = nullptr;
  Counter* epoch_advances_ = nullptr;
  Counter* epoch_advance_stalls_ = nullptr;
  Gauge* epoch_retired_unreclaimed_ = nullptr;
  Gauge* epoch_global_ = nullptr;
  Histogram* wal_commit_wait_ = nullptr;
  Counter* gate_contended_ = nullptr;
  Histogram* gate_wait_ = nullptr;
  Counter* router_hits_ = nullptr;
  Counter* router_fallbacks_ = nullptr;
  Gauge* size_skew_ = nullptr;
  Counter* tier_cache_hits_ = nullptr;
  Counter* tier_cache_misses_ = nullptr;
  Counter* transitions_ = nullptr;

  // Evaluation state, under mutex_.
  std::mutex mutex_;
  SampleRing ring_;
  SampledMetrics last_{};
  bool have_last_ = false;
  double wal_baseline_p99_ns_ = 0.0;
  double tier_miss_baseline_ = 0.0;
  std::array<HealthLevel, kNumHealthDetectors> levels_{};
  std::atomic<uint64_t> samples_{0};

  // Published report, under its own mutex so readers never contend with
  // a long evaluation.
  mutable std::mutex report_mutex_;
  HealthReport report_;

  // Sampler thread.
  mutable std::mutex thread_control_mutex_;
  std::mutex tick_mutex_;
  std::condition_variable tick_cv_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace alex::obs
