// Process-wide observability: a metrics registry (counters / gauges /
// log2-bucketed histograms), a per-operation latency layer, and a slow-op
// trace ring buffer.
//
// Design constraints, in order:
//
//   1. A *disabled* hot path must cost one predictable branch. Every
//      instrumentation site goes through the ALEX_OBS_* macros below, which
//      expand to `if (Enabled()) { ... }` with the registry lookup hidden in
//      a function-local static *inside* the enabled branch — so with the
//      runtime flag off the whole site is one relaxed atomic load and one
//      never-taken branch. Compiling with -DALEX_DISABLE_OBS removes the
//      sites entirely (the macros expand to nothing).
//
//   2. An *enabled* hot path must never make unrelated threads share a
//      cache line. Counters are striped: each thread picks one of
//      kStripes cache-line-aligned atomic cells at first use and always
//      increments its own; Load() folds the stripes. Increments are real
//      fetch_adds (not load+store), so counts stay exact even when more
//      threads than stripes collide on a cell — the sharded conservation
//      tests depend on that.
//
//   3. Snapshots (JSON / Prometheus text exposition) may be slow; they take
//      the registry mutex and fold the atomics. Hot-path writers never
//      touch that mutex: instrumentation sites cache their metric pointer
//      (pointers stay valid forever — the registry only grows, and the
//      global instance is deliberately leaked).
//
// Timing uses raw TSC reads on x86-64 (calibrated once against
// steady_clock), because two steady_clock calls per operation would by
// themselves blow the <3% enabled-overhead budget that
// bench/obs_overhead.cc enforces.
//
// The per-operation layer: ScopedOpTimer wraps one public index operation,
// records its latency into a per-(op, shard) histogram, and — when the
// latency exceeds SlowOpRing::threshold_ns() — captures a structured trace
// record (op, shard, duration, descent retries, leaf splits escalated, WAL
// commit wait) into a fixed-size lock-free ring. The context fields are
// accumulated by the inner layers through a thread-local OpContext that the
// timer resets on construction, which keeps the layers decoupled: the core
// index bumps "descent retry" without knowing whether a sharded op, a bench
// loop, or nothing at all is watching. ScopedOpTimer is not reentrant (one
// live timer per thread); public index operations do not nest, which is the
// only place it is used.
//
// Thread-safety: everything here is safe to call concurrently. Reset
// functions are test/bench-only and must not race writers.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/histogram.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <x86intrin.h>
#define ALEX_OBS_RDTSC 1
#else
#define ALEX_OBS_RDTSC 0
#endif

namespace alex::obs {

// ---------------------------------------------------------------------------
// Runtime enable flag.

#if defined(ALEX_DISABLE_OBS)
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}
/// True when instrumentation is recording. Relaxed load: sites tolerate a
/// stale value for a few operations around the flip.
inline bool Enabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}
inline void SetEnabled(bool on) {
  EnabledFlag().store(on, std::memory_order_relaxed);
}
#endif

// ---------------------------------------------------------------------------
// Clock: raw TSC on x86-64, steady_clock elsewhere.

/// Raw monotonic tick count. Convert with TicksToNs().
inline uint64_t NowTicks() {
#if ALEX_OBS_RDTSC
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Nanoseconds per tick, calibrated once (on x86-64: a ~200us spin against
/// steady_clock at first use; constant TSC is assumed, as on every machine
/// this code targets).
inline double NsPerTick() {
#if ALEX_OBS_RDTSC
  static const double ns_per_tick = [] {
    const auto wall0 = std::chrono::steady_clock::now();
    const uint64_t tick0 = __rdtsc();
    double ns = 0.0;
    uint64_t ticks = 0;
    do {
      ns = std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - wall0)
               .count();
      ticks = __rdtsc() - tick0;
    } while (ns < 2e5 || ticks == 0);
    return ns / static_cast<double>(ticks);
  }();
  return ns_per_tick;
#else
  using Period = std::chrono::steady_clock::period;
  return 1e9 * static_cast<double>(Period::num) /
         static_cast<double>(Period::den);
#endif
}

inline uint64_t TicksToNs(uint64_t ticks) {
  return static_cast<uint64_t>(static_cast<double>(ticks) * NsPerTick());
}

/// Reads an unsigned integer environment override, falling back to
/// `fallback` when the variable is unset or unparseable. Re-read on every
/// call (no caching) so objects constructed after a setenv — fresh rings
/// in tests, the health monitor's options — pick the override up.
inline uint64_t EnvOverrideU64(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || (end != nullptr && *end != '\0')) return fallback;
  return static_cast<uint64_t>(v);
}

// ---------------------------------------------------------------------------
// Metric primitives.

/// Number of single-writer stripes in striped metrics (counters and
/// histograms). The first kMetricStripes - 1 threads of the process each
/// own a private stripe — single writer, so updates are RMW-free relaxed
/// load + store pairs with no lock prefix — and every later thread shares
/// the overflow stripe (index kMetricStripes - 1) through atomic RMWs.
constexpr size_t kMetricStripes = 16;

/// First-come stripe assignment, decided once per thread: the first
/// kMetricStripes - 1 threads get exclusive stripes, everyone later lands
/// on the shared overflow stripe.
inline size_t ThreadMetricStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe = std::min(
      next.fetch_add(1, std::memory_order_relaxed), kMetricStripes - 1);
  return stripe;
}

/// Monotone counter, striped across cache lines. Exact: exclusive-stripe
/// threads update with plain relaxed load + store, overflow threads with
/// fetch_add; Load() folds every stripe. Each cell is monotone, so
/// concurrent readers see a non-decreasing total. Reset() assumes
/// quiescence (no concurrent Add).
class Counter {
 public:
  static constexpr size_t kStripes = kMetricStripes;

  void Add(uint64_t delta) {
    const size_t s = ThreadMetricStripe();
    std::atomic<uint64_t>& cell = stripes_[s].value;
    if (__builtin_expect(s < kStripes - 1, 1)) {
      cell.store(cell.load(std::memory_order_relaxed) + delta,
                 std::memory_order_relaxed);
    } else {
      cell.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  void Increment() { Add(1); }

  uint64_t Load() const {
    uint64_t sum = 0;
    for (const Stripe& s : stripes_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void Reset() {
    for (Stripe& s : stripes_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };

  std::array<Stripe, kStripes> stripes_{};
};

/// Last-value gauge (e.g. retired-but-unreclaimed node count).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Load() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Concurrent log2 histogram: the atomic mirror of util::Log2Histogram,
/// striped like Counter. An exclusive-stripe thread records with three
/// RMW-free relaxed load + store pairs (bucket, sum, conditional max);
/// overflow threads use atomic RMWs on the shared stripe. Count/Sum/Max
/// and Snapshot() fold every stripe into a plain Log2Histogram for
/// quantiles. A snapshot taken against concurrent writers may tear across
/// fields (count vs sum); each field is individually consistent. Reset()
/// assumes quiescence (no concurrent Record).
class Histogram {
 public:
  static constexpr int kNumBuckets = util::Log2Histogram::kNumBuckets;
  static constexpr size_t kStripes = kMetricStripes;

  void Record(uint64_t value) {
    const size_t s = ThreadMetricStripe();
    Stripe& st = stripes_[s];
    const int bucket = util::Log2Histogram::BucketOf(value);
    if (__builtin_expect(s < kStripes - 1, 1)) {
      st.counts[bucket].store(
          st.counts[bucket].load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      st.sum.store(st.sum.load(std::memory_order_relaxed) + value,
                   std::memory_order_relaxed);
      if (value > st.max.load(std::memory_order_relaxed)) {
        st.max.store(value, std::memory_order_relaxed);
      }
    } else {
      st.counts[bucket].fetch_add(1, std::memory_order_relaxed);
      st.sum.fetch_add(value, std::memory_order_relaxed);
      uint64_t prev = st.max.load(std::memory_order_relaxed);
      while (value > prev && !st.max.compare_exchange_weak(
                                 prev, value, std::memory_order_relaxed)) {
      }
    }
  }

  uint64_t Count() const {
    uint64_t total = 0;
    for (const Stripe& st : stripes_) {
      for (const auto& c : st.counts) {
        total += c.load(std::memory_order_relaxed);
      }
    }
    return total;
  }
  uint64_t Sum() const {
    uint64_t total = 0;
    for (const Stripe& st : stripes_) {
      total += st.sum.load(std::memory_order_relaxed);
    }
    return total;
  }
  uint64_t Max() const {
    uint64_t m = 0;
    for (const Stripe& st : stripes_) {
      m = std::max(m, st.max.load(std::memory_order_relaxed));
    }
    return m;
  }

  util::Log2Histogram Snapshot() const {
    uint64_t counts[kNumBuckets] = {};
    for (const Stripe& st : stripes_) {
      for (int b = 0; b < kNumBuckets; ++b) {
        counts[b] += st.counts[b].load(std::memory_order_relaxed);
      }
    }
    util::Log2Histogram out;
    out.AddFolded(counts, kNumBuckets, Sum(), Max());
    return out;
  }

  void Reset() {
    for (Stripe& st : stripes_) {
      for (auto& c : st.counts) c.store(0, std::memory_order_relaxed);
      st.sum.store(0, std::memory_order_relaxed);
      st.max.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kNumBuckets> counts{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };

  std::array<Stripe, kStripes> stripes_{};
};

// ---------------------------------------------------------------------------
// Per-operation latency layer.

enum class OpType : uint8_t {
  kGet = 0,
  kContains,
  kInsert,
  kErase,
  kUpdate,
  kRangeScan,
  kScan,
  kAggregate,
  kMultiGet,
  kMultiInsert,
  kMultiErase,
};
constexpr size_t kNumOpTypes = 11;

inline const char* OpName(OpType op) {
  switch (op) {
    case OpType::kGet: return "get";
    case OpType::kContains: return "contains";
    case OpType::kInsert: return "insert";
    case OpType::kErase: return "erase";
    case OpType::kUpdate: return "update";
    case OpType::kRangeScan: return "range_scan";
    case OpType::kScan: return "scan";
    case OpType::kAggregate: return "aggregate";
    case OpType::kMultiGet: return "multi_get";
    case OpType::kMultiInsert: return "multi_insert";
    case OpType::kMultiErase: return "multi_erase";
  }
  return "?";
}

/// Shard argument for operations that span shards (scans, batches) or run
/// before routing resolves.
constexpr uint32_t kShardAll = ~0u;

/// Per-thread context accumulated by the inner layers during one operation
/// and harvested by ScopedOpTimer for the slow-op trace. Reset by the timer
/// at operation start.
struct OpContext {
  uint32_t descent_retries = 0;  // retired-leaf re-descends
  uint32_t leaf_splits = 0;      // splits escalated by this op
  uint64_t wal_wait_ns = 0;      // time inside WAL group commit
};

inline OpContext& TlsOpContext() {
  thread_local OpContext ctx;
  return ctx;
}

/// One captured slow operation. `ts_ns` is the capture (completion) time
/// on the TicksToNs clock, so slow ops can be placed on the same timeline
/// as journal events in the Chrome-trace export.
struct SlowOpRecord {
  uint64_t ticket = 0;  // monotone capture index; higher = more recent
  uint64_t ts_ns = 0;   // completion timestamp
  OpType op = OpType::kGet;
  uint32_t shard = 0;  // kShardAll for cross-shard ops
  uint64_t duration_ns = 0;
  uint32_t descent_retries = 0;
  uint32_t leaf_splits = 0;
  uint64_t wal_wait_ns = 0;
};

/// Fixed-size lock-free trace ring. Writers claim a slot with one
/// fetch_add and publish through a per-slot sequence word (odd while
/// writing, even when published); Snapshot() skips slots it catches
/// mid-write. All record fields are atomics, so a racing overwrite can
/// produce a *dropped* record but never a torn read.
class SlowOpRing {
 public:
  static constexpr size_t kCapacity = 256;  // power of two
  static constexpr uint64_t kDefaultThresholdNs = 10'000'000;  // 10 ms

  /// The construction-time threshold: kDefaultThresholdNs unless the
  /// ALEX_OBS_SLOW_OP_NS environment variable overrides it.
  static uint64_t InitialThresholdNs() {
    return EnvOverrideU64("ALEX_OBS_SLOW_OP_NS", kDefaultThresholdNs);
  }

  void set_threshold_ns(uint64_t ns) {
    threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t threshold_ns() const {
    return threshold_ns_.load(std::memory_order_relaxed);
  }

  /// Total records ever captured (not the live count: the ring keeps the
  /// most recent kCapacity).
  uint64_t captured() const { return next_.load(std::memory_order_relaxed); }

  void Push(OpType op, uint32_t shard, uint64_t duration_ns,
            const OpContext& ctx) {
    const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[ticket & (kCapacity - 1)];
    s.seq.store(2 * ticket + 1, std::memory_order_release);
    s.ts_ns.store(TicksToNs(NowTicks()), std::memory_order_relaxed);
    s.op.store(static_cast<uint64_t>(op), std::memory_order_relaxed);
    s.shard.store(shard, std::memory_order_relaxed);
    s.duration_ns.store(duration_ns, std::memory_order_relaxed);
    s.descent_retries.store(ctx.descent_retries, std::memory_order_relaxed);
    s.leaf_splits.store(ctx.leaf_splits, std::memory_order_relaxed);
    s.wal_wait_ns.store(ctx.wal_wait_ns, std::memory_order_relaxed);
    s.seq.store(2 * ticket + 2, std::memory_order_release);
  }

  /// Stable records, oldest first.
  std::vector<SlowOpRecord> Snapshot() const {
    std::vector<SlowOpRecord> out;
    out.reserve(kCapacity);
    for (const Slot& s : slots_) {
      const uint64_t seq = s.seq.load(std::memory_order_acquire);
      if (seq == 0 || (seq & 1) != 0) continue;  // empty or being written
      SlowOpRecord rec;
      rec.ticket = seq / 2 - 1;
      rec.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
      rec.op = static_cast<OpType>(s.op.load(std::memory_order_relaxed));
      rec.shard =
          static_cast<uint32_t>(s.shard.load(std::memory_order_relaxed));
      rec.duration_ns = s.duration_ns.load(std::memory_order_relaxed);
      rec.descent_retries = static_cast<uint32_t>(
          s.descent_retries.load(std::memory_order_relaxed));
      rec.leaf_splits =
          static_cast<uint32_t>(s.leaf_splits.load(std::memory_order_relaxed));
      rec.wal_wait_ns = s.wal_wait_ns.load(std::memory_order_relaxed);
      if (s.seq.load(std::memory_order_acquire) != seq) continue;  // reused
      out.push_back(rec);
    }
    std::sort(out.begin(), out.end(),
              [](const SlowOpRecord& a, const SlowOpRecord& b) {
                return a.ticket < b.ticket;
              });
    return out;
  }

  /// Test/bench-only; must not race Push().
  void Reset() {
    next_.store(0, std::memory_order_relaxed);
    for (Slot& s : slots_) s.seq.store(0, std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> op{0};
    std::atomic<uint64_t> shard{0};
    std::atomic<uint64_t> duration_ns{0};
    std::atomic<uint64_t> descent_retries{0};
    std::atomic<uint64_t> leaf_splits{0};
    std::atomic<uint64_t> wal_wait_ns{0};
  };

  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> threshold_ns_{InitialThresholdNs()};
  std::array<Slot, kCapacity> slots_{};
};

// ---------------------------------------------------------------------------
// Registry.

class MetricsRegistry {
 public:
  /// Per-shard latency slots 0..kMaxTrackedShards-1; shard indexes at or
  /// past the cap, and cross-shard ops (kShardAll), fold into one overflow
  /// slot named "all".
  static constexpr size_t kMaxTrackedShards = 32;

  /// The process-wide registry. Deliberately leaked so metric pointers
  /// cached in function-local statics stay valid through static
  /// destruction.
  static MetricsRegistry& Global() {
    static MetricsRegistry* global = new MetricsRegistry();
    return *global;
  }

  /// Named lookups create on first use and are idempotent; returned
  /// pointers are valid forever. Registration takes a mutex — hot paths
  /// must cache the pointer (the ALEX_OBS_* macros do).
  Counter* GetCounter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<Counter>();
    return slot.get();
  }

  Gauge* GetGauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<Gauge>();
    return slot.get();
  }

  Histogram* GetHistogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[name];
    if (slot == nullptr) slot = std::make_unique<Histogram>();
    return slot.get();
  }

  /// The per-(op, shard) latency histogram ("op.<name>.latency_ns.<shard>").
  /// Hot path: two array indexes + one acquire load once the slot exists.
  Histogram* OpLatency(OpType op, uint32_t shard) {
    const size_t slot_idx =
        shard < kMaxTrackedShards ? shard : kMaxTrackedShards;
    std::atomic<Histogram*>& slot =
        op_latency_[static_cast<size_t>(op)][slot_idx];
    Histogram* h = slot.load(std::memory_order_acquire);
    if (h != nullptr) return h;
    const std::string name =
        std::string("op.") + OpName(op) + ".latency_ns.shard_" +
        (slot_idx == kMaxTrackedShards ? std::string("all")
                                       : std::to_string(slot_idx));
    h = GetHistogram(name);
    slot.store(h, std::memory_order_release);
    return h;
  }

  /// One op's latency distribution merged across every shard slot.
  util::Log2Histogram OpLatencySnapshot(OpType op) const {
    util::Log2Histogram merged;
    for (const auto& slot : op_latency_[static_cast<size_t>(op)]) {
      const Histogram* h = slot.load(std::memory_order_acquire);
      if (h != nullptr) merged.Merge(h->Snapshot());
    }
    return merged;
  }

  SlowOpRing& slow_ops() { return slow_ops_; }
  const SlowOpRing& slow_ops() const { return slow_ops_; }

  /// Total operations recorded against one per-shard latency slot, summed
  /// across op types. Cheap relative to a full snapshot: only slots some
  /// operation has actually touched have a histogram to fold, so in a
  /// 4-shard run this reads 4-5 histograms per op type, not 33. The health
  /// sampler uses this for per-shard traffic-skew deltas.
  uint64_t OpCountForShardSlot(size_t slot_idx) const {
    if (slot_idx > kMaxTrackedShards) return 0;
    uint64_t total = 0;
    for (size_t op = 0; op < kNumOpTypes; ++op) {
      const Histogram* h =
          op_latency_[op][slot_idx].load(std::memory_order_acquire);
      if (h != nullptr) total += h->Count();
    }
    return total;
  }

  /// Metrics whose value is currently nonzero (counters > 0, gauges != 0,
  /// histograms with at least one sample).
  size_t NonZeroMetricCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto& [name, c] : counters_) n += c->Load() > 0 ? 1 : 0;
    for (const auto& [name, g] : gauges_) n += g->Load() != 0 ? 1 : 0;
    for (const auto& [name, h] : histograms_) n += h->Count() > 0 ? 1 : 0;
    return n;
  }

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, max, p50, p99, p999}},
  /// "slow_ops": [...]}.
  std::string SnapshotJson() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
      AppendKey(&out, &first, name);
      out += std::to_string(c->Load());
    }
    out += "},\n  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
      AppendKey(&out, &first, name);
      out += std::to_string(g->Load());
    }
    out += "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
      AppendKey(&out, &first, name);
      const util::Log2Histogram snap = h->Snapshot();
      out += "{\"count\": " + std::to_string(snap.Count()) +
             ", \"sum\": " + std::to_string(snap.Sum()) +
             ", \"max\": " + std::to_string(snap.Max()) +
             ", \"p50\": " + std::to_string(snap.Quantile(0.50)) +
             ", \"p99\": " + std::to_string(snap.Quantile(0.99)) +
             ", \"p999\": " + std::to_string(snap.Quantile(0.999)) + "}";
    }
    out += "},\n  \"slow_ops\": [";
    first = true;
    for (const SlowOpRecord& rec : slow_ops_.Snapshot()) {
      if (!first) out += ", ";
      first = false;
      out += "{\"op\": \"";
      out += OpName(rec.op);
      out += "\", \"shard\": ";
      out += rec.shard == kShardAll ? std::string("\"all\"")
                                    : std::to_string(rec.shard);
      out += ", \"ts_ns\": " + std::to_string(rec.ts_ns) +
             ", \"duration_ns\": " + std::to_string(rec.duration_ns) +
             ", \"descent_retries\": " + std::to_string(rec.descent_retries) +
             ", \"leaf_splits\": " + std::to_string(rec.leaf_splits) +
             ", \"wal_wait_ns\": " + std::to_string(rec.wal_wait_ns) + "}";
    }
    out += "]\n}";
    return out;
  }

  /// Human-readable help text for a metric family, keyed by the internal
  /// (pre-sanitization) name. Known families get specific text; everything
  /// else gets a generic line so every exposition family still carries a
  /// # HELP entry.
  static std::string MetricHelp(const std::string& name) {
    static const std::map<std::string, const char*> kCatalog = {
        {"epoch.retired", "Nodes retired into epoch-based reclamation"},
        {"epoch.freed", "Retired nodes actually freed by reclamation"},
        {"epoch.advances", "Successful global epoch advances"},
        {"epoch.advance_stalls",
         "Reclamation attempts that found a pinned older epoch"},
        {"epoch.retired_unreclaimed",
         "Nodes retired but not yet freed (reclamation backlog)"},
        {"epoch.global_epoch", "Current global reclamation epoch"},
        {"wal.fsyncs", "WAL fsync/fdatasync calls issued"},
        {"wal.bytes_written", "Bytes appended to WAL segments"},
        {"wal.commit_batches", "WAL group-commit batches flushed"},
        {"wal.records_logged", "Records appended to the WAL"},
        {"wal.commit_wait_ns",
         "Time a committing thread waited inside WAL group commit"},
        {"wal.commit_batch_bytes", "Bytes flushed per WAL commit batch"},
        {"wal.commit_batch_records", "Records flushed per WAL commit batch"},
        {"shard.write_gate_contended",
         "Write-gate acquisitions that found the gate held"},
        {"shard.write_gate_wait_ns",
         "Wait time for contended write-gate acquisitions"},
        {"shard.router_model_hits",
         "Routed lookups answered by the router's learned model"},
        {"shard.router_fallbacks",
         "Routed lookups that fell back to boundary binary search"},
        {"shard.router_refits", "Router model refits from key distribution"},
        {"shard.topology_splits", "Committed shard split transactions"},
        {"shard.topology_merges", "Committed shard merge transactions"},
        {"shard.topology_rebalances",
         "Committed shard rebalance transactions"},
        {"shard.size_skew_x100",
         "Largest shard size over mean shard size, times 100"},
        {"core.leaf_latch_contended",
         "Leaf latch acquisitions that found the latch held"},
        {"core.leaf_latch_wait_ns",
         "Wait time for contended leaf latch acquisitions"},
        {"health.transitions", "Health detector state transitions"},
        {"tier.cache_hits", "Cold-tier block cache hits"},
        {"tier.cache_misses", "Cold-tier block cache misses"},
        {"tier.cache_evictions", "Cold-tier blocks evicted from the cache"},
        {"tier.cache_pinned_bytes",
         "Cold-tier cache bytes pinned by in-flight readers"},
        {"tier.demotions", "Resident shards demoted to cold segments"},
        {"tier.promotions", "Cold segments promoted back to resident"},
        {"tier.compactions",
         "Cold-shard compactions (delta overlay folded into a new segment)"},
        {"tier.cold_bytes", "Bytes held in cold-tier segment files"},
    };
    const auto it = kCatalog.find(name);
    if (it != kCatalog.end()) return it->second;
    if (name.rfind("op.", 0) == 0 && name.find(".latency_ns.") != std::string::npos) {
      return "Per-operation latency (" + name + ")";
    }
    return "Metric " + name;
  }

  /// Prometheus text exposition format, version 0.0.4. Counters and gauges
  /// as their own types; histograms as summaries (quantile labels + _sum +
  /// _count). Every family carries # HELP and # TYPE metadata. Metric
  /// names are prefixed "alex_" and sanitized to [a-zA-Z0-9_].
  std::string SnapshotPrometheus() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const auto& [name, c] : counters_) {
      const std::string prom = PrometheusName(name);
      out += "# HELP " + prom + " " + MetricHelp(name) + "\n";
      out += "# TYPE " + prom + " counter\n";
      out += prom + " " + std::to_string(c->Load()) + "\n";
    }
    for (const auto& [name, g] : gauges_) {
      const std::string prom = PrometheusName(name);
      out += "# HELP " + prom + " " + MetricHelp(name) + "\n";
      out += "# TYPE " + prom + " gauge\n";
      out += prom + " " + std::to_string(g->Load()) + "\n";
    }
    for (const auto& [name, h] : histograms_) {
      const std::string prom = PrometheusName(name);
      const util::Log2Histogram snap = h->Snapshot();
      out += "# HELP " + prom + " " + MetricHelp(name) + "\n";
      out += "# TYPE " + prom + " summary\n";
      out += prom + "{quantile=\"0.5\"} " +
             std::to_string(snap.Quantile(0.50)) + "\n";
      out += prom + "{quantile=\"0.99\"} " +
             std::to_string(snap.Quantile(0.99)) + "\n";
      out += prom + "{quantile=\"0.999\"} " +
             std::to_string(snap.Quantile(0.999)) + "\n";
      out += prom + "_sum " + std::to_string(snap.Sum()) + "\n";
      out += prom + "_count " + std::to_string(snap.Count()) + "\n";
    }
    return out;
  }

  /// Zeroes every metric and the slow-op ring. Registered metric objects
  /// stay valid (cached pointers keep working). Test/bench-only; must not
  /// race hot-path writers.
  void ResetAll() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) c->Reset();
    for (auto& [name, g] : gauges_) g->Reset();
    for (auto& [name, h] : histograms_) h->Reset();
    slow_ops_.Reset();
  }

 private:
  MetricsRegistry() = default;

  static void AppendKey(std::string* out, bool* first,
                        const std::string& name) {
    if (!*first) *out += ", ";
    *first = false;
    *out += '"';
    *out += name;  // metric names are code constants, no escaping needed
    *out += "\": ";
  }

  static std::string PrometheusName(const std::string& name) {
    std::string out = "alex_";
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      out += ok ? c : '_';
    }
    return out;
  }

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::array<std::array<std::atomic<Histogram*>, kMaxTrackedShards + 1>,
             kNumOpTypes>
      op_latency_{};
  SlowOpRing slow_ops_;
};

// ---------------------------------------------------------------------------
// Scoped timers.

/// Times one public index operation: records the latency into the
/// per-(op, shard) histogram and, past the slow-op threshold, captures the
/// thread's OpContext into the trace ring. Construct at operation entry
/// (resets the context); call set_shard() once routing resolves.
class ScopedOpTimer {
 public:
  explicit ScopedOpTimer(OpType op, uint32_t shard = kShardAll) {
#if !defined(ALEX_DISABLE_OBS)
    if (__builtin_expect(Enabled(), 0)) {
      active_ = true;
      op_ = op;
      shard_ = shard;
      TlsOpContext() = OpContext{};
      start_ticks_ = NowTicks();
    }
#else
    (void)op;
    (void)shard;
#endif
  }

  void set_shard(uint32_t shard) { shard_ = shard; }

  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

  ~ScopedOpTimer() {
#if !defined(ALEX_DISABLE_OBS)
    if (!active_) return;
    const uint64_t ns = TicksToNs(NowTicks() - start_ticks_);
    MetricsRegistry& reg = MetricsRegistry::Global();
    reg.OpLatency(op_, shard_)->Record(ns);
    SlowOpRing& ring = reg.slow_ops();
    if (__builtin_expect(ns >= ring.threshold_ns(), 0)) {
      ring.Push(op_, shard_, ns, TlsOpContext());
    }
#endif
  }

 private:
  uint64_t start_ticks_ = 0;
  OpType op_ = OpType::kGet;
  uint32_t shard_ = kShardAll;
  bool active_ = false;
};

/// Generic scoped latency timer into one registry histogram — the shared
/// accounting path the benches use instead of hand-rolled recorders. Always
/// records when given a histogram (benches opt in explicitly; pass nullptr
/// to disable).
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* h)
      : h_(h), start_ticks_(h != nullptr ? NowTicks() : 0) {}

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

  ~ScopedLatencyTimer() {
    if (h_ != nullptr) h_->Record(TicksToNs(NowTicks() - start_ticks_));
  }

 private:
  Histogram* h_;
  uint64_t start_ticks_;
};

}  // namespace alex::obs

// ---------------------------------------------------------------------------
// Instrumentation-site macros. Each site caches its metric pointer in a
// function-local static *inside* the enabled branch, so a disabled site is
// one relaxed load + one never-taken branch, and -DALEX_DISABLE_OBS removes
// it entirely.

#if defined(ALEX_DISABLE_OBS)

#define ALEX_OBS_COUNTER_ADD(name, delta) \
  do {                                    \
  } while (0)
#define ALEX_OBS_COUNTER_INC(name) \
  do {                             \
  } while (0)
#define ALEX_OBS_GAUGE_SET(name, value) \
  do {                                  \
  } while (0)
#define ALEX_OBS_HIST_RECORD(name, value) \
  do {                                    \
  } while (0)
#define ALEX_OBS_CTX_ADD(field, delta) \
  do {                                 \
  } while (0)
#define ALEX_OBS_TIMED_SHARED_LOCK(lk, m, contended_name, wait_hist_name) \
  std::shared_lock<std::decay_t<decltype(m)>> lk(m)
#define ALEX_OBS_TIMED_UNIQUE_LOCK(lk, m, contended_name, wait_hist_name) \
  std::unique_lock<std::decay_t<decltype(m)>> lk(m)

#else  // !ALEX_DISABLE_OBS

#define ALEX_OBS_COUNTER_ADD(name, delta)                          \
  do {                                                             \
    if (__builtin_expect(::alex::obs::Enabled(), 0)) {             \
      static ::alex::obs::Counter* const alex_obs_counter_ =       \
          ::alex::obs::MetricsRegistry::Global().GetCounter(name); \
      alex_obs_counter_->Add(delta);                               \
    }                                                              \
  } while (0)

#define ALEX_OBS_COUNTER_INC(name) ALEX_OBS_COUNTER_ADD(name, 1)

#define ALEX_OBS_GAUGE_SET(name, value)                          \
  do {                                                           \
    if (__builtin_expect(::alex::obs::Enabled(), 0)) {           \
      static ::alex::obs::Gauge* const alex_obs_gauge_ =         \
          ::alex::obs::MetricsRegistry::Global().GetGauge(name); \
      alex_obs_gauge_->Set(static_cast<int64_t>(value));         \
    }                                                            \
  } while (0)

#define ALEX_OBS_HIST_RECORD(name, value)                            \
  do {                                                               \
    if (__builtin_expect(::alex::obs::Enabled(), 0)) {               \
      static ::alex::obs::Histogram* const alex_obs_hist_ =          \
          ::alex::obs::MetricsRegistry::Global().GetHistogram(name); \
      alex_obs_hist_->Record(static_cast<uint64_t>(value));          \
    }                                                                \
  } while (0)

#define ALEX_OBS_CTX_ADD(field, delta)                 \
  do {                                                 \
    if (__builtin_expect(::alex::obs::Enabled(), 0)) { \
      ::alex::obs::TlsOpContext().field += (delta);    \
    }                                                  \
  } while (0)

// Lock-wait instrumentation: when enabled, try-lock first; only a
// *contended* acquisition pays the two extra clock reads. The uncontended
// enabled path costs the same as a plain lock.
#define ALEX_OBS_TIMED_SHARED_LOCK(lk, m, contended_name, wait_hist_name)  \
  std::shared_lock<std::decay_t<decltype(m)>> lk(m, std::defer_lock);      \
  if (__builtin_expect(::alex::obs::Enabled(), 0)) {                       \
    if (!lk.try_lock()) {                                                  \
      ALEX_OBS_COUNTER_INC(contended_name);                                \
      const uint64_t alex_obs_lock_t0_ = ::alex::obs::NowTicks();          \
      lk.lock();                                                           \
      ALEX_OBS_HIST_RECORD(wait_hist_name,                                 \
                           ::alex::obs::TicksToNs(::alex::obs::NowTicks() - \
                                                  alex_obs_lock_t0_));     \
    }                                                                      \
  } else {                                                                 \
    lk.lock();                                                             \
  }

#define ALEX_OBS_TIMED_UNIQUE_LOCK(lk, m, contended_name, wait_hist_name)  \
  std::unique_lock<std::decay_t<decltype(m)>> lk(m, std::defer_lock);      \
  if (__builtin_expect(::alex::obs::Enabled(), 0)) {                       \
    if (!lk.try_lock()) {                                                  \
      ALEX_OBS_COUNTER_INC(contended_name);                                \
      const uint64_t alex_obs_lock_t0_ = ::alex::obs::NowTicks();          \
      lk.lock();                                                           \
      ALEX_OBS_HIST_RECORD(wait_hist_name,                                 \
                           ::alex::obs::TicksToNs(::alex::obs::NowTicks() - \
                                                  alex_obs_lock_t0_));     \
    }                                                                      \
  } else {                                                                 \
    lk.lock();                                                             \
  }

#endif  // ALEX_DISABLE_OBS
