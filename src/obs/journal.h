// Bounded structured event journal: the system's causal history.
//
// Metrics (obs/metrics.h) say how much and how fast; they cannot say what
// *happened*. The journal records the rare, structural events — topology
// transactions, checkpoints, recoveries, WAL errors, bulk loads, health
// state transitions — as fixed-shape records with timestamps and causal
// context (shard index, wal id, LSN), so a stall or a corruption can be
// traced back through the exact sequence of structural changes that
// preceded it. SIGNAL-style process queries over event logs need
// structured records, not free text; every event therefore carries two
// type-specific integer arguments instead of a message string (the schema
// per type is documented on EventType).
//
// Storage is an append-only ring of kCapacity slots reusing the seqlock
// idiom of SlowOpRing: writers claim a slot with one fetch_add and publish
// through a per-slot sequence word (odd while writing, even when
// published); Snapshot() skips slots it catches mid-write and drops
// records a racing wrap overwrote — never a torn read. Events are rare
// (they sit on structural seams, not the op hot path), so the optional
// file sink — one JSON line per event, appended under a mutex — costs
// nothing that matters.
//
// Instrumentation sites go through ALEX_OBS_EVENT, which follows the
// metrics macros' contract: one predicted branch when the runtime flag is
// off, nothing at all under -DALEX_DISABLE_OBS. The health monitor
// (obs/health.h) appends its transition events directly — it only runs by
// explicit request, so it needs no flag gate.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace alex::obs {

/// What happened. The `a` / `b` arguments per type:
///   kTopologySplit/kMerge/kRebalance  a = victim count, b = child count;
///       shard = first victim index, wal_id = first victim's log id (0
///       unlogged), lsn = first victim's seal LSN (0 unlogged).
///   kCheckpoint   a = manifest generation, b = shard count; lsn = highest
///       checkpoint LSN across shards.
///   kRecovery     a = WAL records replayed, b = recovered shard count.
///   kBulkLoad     a = keys loaded, b = shard count.
///   kWalEnabled   a = shard count; wal_id = first shard's log id.
///   kWalError     a = wal::WalStatus as int; wal_id/lsn = failing log.
///   kHealthTransition  a = health detector id, b = packed edge
///       (old_level * 256 + new_level); see obs/health.h.
///   kTierDemotion/kTierPromotion/kTierCompaction  a = keys in the shard,
///       b = cold segment id (the new segment for demotion/compaction,
///       the retired one for promotion); shard = victim index.
enum class EventType : uint8_t {
  kTopologySplit = 0,
  kTopologyMerge,
  kTopologyRebalance,
  kCheckpoint,
  kRecovery,
  kBulkLoad,
  kWalEnabled,
  kWalError,
  kHealthTransition,
  kTierDemotion,
  kTierPromotion,
  kTierCompaction,
};

inline const char* EventName(EventType type) {
  switch (type) {
    case EventType::kTopologySplit: return "topology_split";
    case EventType::kTopologyMerge: return "topology_merge";
    case EventType::kTopologyRebalance: return "topology_rebalance";
    case EventType::kCheckpoint: return "checkpoint";
    case EventType::kRecovery: return "recovery";
    case EventType::kBulkLoad: return "bulk_load";
    case EventType::kWalEnabled: return "wal_enabled";
    case EventType::kWalError: return "wal_error";
    case EventType::kHealthTransition: return "health_transition";
    case EventType::kTierDemotion: return "tier_demotion";
    case EventType::kTierPromotion: return "tier_promotion";
    case EventType::kTierCompaction: return "tier_compaction";
  }
  return "?";
}

/// One journal record. `ts_ns` shares the clock of the slow-op ring
/// (TicksToNs(NowTicks())), so journal events and slow-op spans land on
/// one timeline in the Chrome-trace export.
struct JournalEvent {
  uint64_t ticket = 0;  // monotone append index; higher = more recent
  uint64_t ts_ns = 0;
  EventType type = EventType::kCheckpoint;
  uint32_t shard = 0;   // kShardAll when no single shard applies
  uint64_t wal_id = 0;  // 0 when no log is involved
  uint64_t lsn = 0;     // 0 when no LSN applies
  int64_t a = 0;        // type-specific, see EventType
  int64_t b = 0;        // type-specific, see EventType
};

/// One event as a JSON object (shared by SnapshotJson, the file sink and
/// the bench artifacts).
inline std::string EventToJson(const JournalEvent& e) {
  std::string out = "{\"ticket\": " + std::to_string(e.ticket) +
                    ", \"ts_ns\": " + std::to_string(e.ts_ns) +
                    ", \"type\": \"";
  out += EventName(e.type);
  out += "\", \"shard\": ";
  out += e.shard == kShardAll ? std::string("\"all\"")
                              : std::to_string(e.shard);
  out += ", \"wal_id\": " + std::to_string(e.wal_id) +
         ", \"lsn\": " + std::to_string(e.lsn) +
         ", \"a\": " + std::to_string(e.a) +
         ", \"b\": " + std::to_string(e.b) + "}";
  return out;
}

/// The append-only ring + optional file sink. Append() is safe from any
/// thread; Snapshot() is wait-free with respect to appenders.
class EventJournal {
 public:
  static constexpr size_t kCapacity = 512;  // power of two

  /// The process-wide journal, deliberately leaked like the metrics
  /// registry (instrumentation sites may fire during static destruction).
  static EventJournal& Global() {
    static EventJournal* global = new EventJournal();
    return *global;
  }

  EventJournal() = default;
  ~EventJournal() { CloseFileSink(); }
  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Total events ever appended (the ring keeps the newest kCapacity).
  uint64_t recorded() const { return next_.load(std::memory_order_relaxed); }

  void Append(EventType type, uint32_t shard, uint64_t wal_id, uint64_t lsn,
              int64_t a, int64_t b) {
    const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t ts_ns = TicksToNs(NowTicks());
    Slot& s = slots_[ticket & (kCapacity - 1)];
    s.seq.store(2 * ticket + 1, std::memory_order_release);
    s.ts_ns.store(ts_ns, std::memory_order_relaxed);
    s.type.store(static_cast<uint64_t>(type), std::memory_order_relaxed);
    s.shard.store(shard, std::memory_order_relaxed);
    s.wal_id.store(wal_id, std::memory_order_relaxed);
    s.lsn.store(lsn, std::memory_order_relaxed);
    s.a.store(a, std::memory_order_relaxed);
    s.b.store(b, std::memory_order_relaxed);
    s.seq.store(2 * ticket + 2, std::memory_order_release);
    if (sink_armed_.load(std::memory_order_acquire)) {
      JournalEvent e;
      e.ticket = ticket;
      e.ts_ns = ts_ns;
      e.type = type;
      e.shard = shard;
      e.wal_id = wal_id;
      e.lsn = lsn;
      e.a = a;
      e.b = b;
      WriteSinkLine(e);
    }
  }

  /// Stable records, oldest first.
  std::vector<JournalEvent> Snapshot() const {
    std::vector<JournalEvent> out;
    out.reserve(kCapacity);
    for (const Slot& s : slots_) {
      const uint64_t seq = s.seq.load(std::memory_order_acquire);
      if (seq == 0 || (seq & 1) != 0) continue;  // empty or being written
      JournalEvent e;
      e.ticket = seq / 2 - 1;
      e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
      e.type = static_cast<EventType>(s.type.load(std::memory_order_relaxed));
      e.shard = static_cast<uint32_t>(s.shard.load(std::memory_order_relaxed));
      e.wal_id = s.wal_id.load(std::memory_order_relaxed);
      e.lsn = s.lsn.load(std::memory_order_relaxed);
      e.a = s.a.load(std::memory_order_relaxed);
      e.b = s.b.load(std::memory_order_relaxed);
      if (s.seq.load(std::memory_order_acquire) != seq) continue;  // reused
      out.push_back(e);
    }
    std::sort(out.begin(), out.end(),
              [](const JournalEvent& x, const JournalEvent& y) {
                return x.ticket < y.ticket;
              });
    return out;
  }

  /// JSON array of the newest `max_events` records, oldest first.
  std::string SnapshotJson(size_t max_events = kCapacity) const {
    std::vector<JournalEvent> events = Snapshot();
    const size_t skip =
        events.size() > max_events ? events.size() - max_events : 0;
    std::string out = "[";
    for (size_t i = skip; i < events.size(); ++i) {
      if (i > skip) out += ", ";
      out += EventToJson(events[i]);
    }
    out += "]";
    return out;
  }

  /// Opens (truncating) a JSON-lines file that every subsequent Append
  /// also writes to. Returns false when the file cannot be opened.
  bool SetFileSink(const std::string& path) {
    std::lock_guard<std::mutex> lock(sink_mutex_);
    if (sink_ != nullptr) std::fclose(sink_);
    sink_ = std::fopen(path.c_str(), "w");
    sink_armed_.store(sink_ != nullptr, std::memory_order_release);
    return sink_ != nullptr;
  }

  void CloseFileSink() {
    std::lock_guard<std::mutex> lock(sink_mutex_);
    sink_armed_.store(false, std::memory_order_release);
    if (sink_ != nullptr) {
      std::fclose(sink_);
      sink_ = nullptr;
    }
  }

  /// Test/bench-only; must not race Append().
  void Reset() {
    next_.store(0, std::memory_order_relaxed);
    for (Slot& s : slots_) s.seq.store(0, std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> type{0};
    std::atomic<uint64_t> shard{0};
    std::atomic<uint64_t> wal_id{0};
    std::atomic<uint64_t> lsn{0};
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
  };

  void WriteSinkLine(const JournalEvent& e) {
    const std::string line = EventToJson(e);
    std::lock_guard<std::mutex> lock(sink_mutex_);
    if (sink_ == nullptr) return;
    std::fwrite(line.data(), 1, line.size(), sink_);
    std::fputc('\n', sink_);
    std::fflush(sink_);  // events are rare; keep the tail crash-readable
  }

  std::atomic<uint64_t> next_{0};
  std::array<Slot, kCapacity> slots_{};
  std::atomic<bool> sink_armed_{false};
  std::mutex sink_mutex_;
  std::FILE* sink_ = nullptr;  // under sink_mutex_
};

inline EventJournal& GlobalJournal() { return EventJournal::Global(); }

}  // namespace alex::obs

// Instrumentation-site macro, following the ALEX_OBS_* contract: a
// disabled site is one relaxed load and a never-taken branch;
// -DALEX_DISABLE_OBS removes it entirely.
#if defined(ALEX_DISABLE_OBS)

#define ALEX_OBS_EVENT(type, shard, wal_id, lsn, a, b) \
  do {                                                 \
  } while (0)

#else  // !ALEX_DISABLE_OBS

#define ALEX_OBS_EVENT(type, shard, wal_id, lsn, a, b)                     \
  do {                                                                     \
    if (__builtin_expect(::alex::obs::Enabled(), 0)) {                     \
      ::alex::obs::GlobalJournal().Append(                                 \
          type, static_cast<uint32_t>(shard),                              \
          static_cast<uint64_t>(wal_id), static_cast<uint64_t>(lsn),       \
          static_cast<int64_t>(a), static_cast<int64_t>(b));               \
    }                                                                      \
  } while (0)

#endif  // ALEX_DISABLE_OBS
