// Structural introspection types and the Chrome-trace exporter.
//
// Metrics answer "how fast"; the journal answers "what happened"; this
// header answers "what does the structure look like right now". The core
// index (ConcurrentAlex::CollectStructure) fills a TreeStructure per
// shard under an epoch guard; ShardedAlex::Inspect() merges them into a
// StructureReport with per-shard and whole-index fill factor, gap
// density, depth distribution, model max-error distribution, and leaf
// chain length — the structural quantities the ALEX paper's cost model
// reasons about, exported as JSON so an operator (or a future network
// front-end) can see whether the RMI has degenerated without attaching a
// debugger.
//
// The Chrome-trace exporter serializes the slow-op ring and the event
// journal into the chrome://tracing / Perfetto JSON event format: slow
// ops become duration ("X") events laid out per shard, journal records
// become instant ("i") events — both on the same TicksToNs timeline, so
// "the p99 spike started right after the shard-3 split" is visible by
// scrolling.
//
// This header is deliberately core-agnostic: pure data + JSON over
// obs/metrics.h and obs/journal.h, no index includes, and it compiles
// under -DALEX_DISABLE_OBS (the exporters just see empty rings).
#pragma once

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/histogram.h"

namespace alex::obs {

// ---------------------------------------------------------------------------
// Structure reports.

/// Structural stats for one tree (or, merged, a whole sharded index).
struct TreeStructure {
  uint64_t inner_count = 0;
  uint64_t leaf_count = 0;
  uint64_t retired_seen = 0;  // retired leaves skipped during the walk
  uint64_t min_depth = 0;     // leaf depth; root-only tree = 0
  uint64_t max_depth = 0;
  uint64_t depth_sum = 0;     // over leaves, for avg_depth()
  uint64_t keys = 0;
  uint64_t capacity = 0;      // gapped-array slots across leaves
  uint64_t chain_length = 0;  // leaves reached via next-leaf pointers
  uint64_t unbounded_leaves = 0;  // leaves past the SIMD error bound
  util::Log2Histogram model_error;  // tracked max-error per bounded leaf

  double fill_factor() const {
    return capacity > 0
               ? static_cast<double>(keys) / static_cast<double>(capacity)
               : 0.0;
  }
  double gap_density() const {
    return capacity > 0 ? 1.0 - fill_factor() : 0.0;
  }
  double avg_depth() const {
    return leaf_count > 0 ? static_cast<double>(depth_sum) /
                                static_cast<double>(leaf_count)
                          : 0.0;
  }

  void Merge(const TreeStructure& other) {
    if (other.leaf_count > 0) {
      min_depth = leaf_count > 0 ? std::min(min_depth, other.min_depth)
                                 : other.min_depth;
      max_depth = std::max(max_depth, other.max_depth);
    }
    inner_count += other.inner_count;
    leaf_count += other.leaf_count;
    retired_seen += other.retired_seen;
    depth_sum += other.depth_sum;
    keys += other.keys;
    capacity += other.capacity;
    chain_length += other.chain_length;
    unbounded_leaves += other.unbounded_leaves;
    model_error.Merge(other.model_error);
  }

  std::string ToJson() const {
    return "{\"inner_count\": " + std::to_string(inner_count) +
           ", \"leaf_count\": " + std::to_string(leaf_count) +
           ", \"retired_seen\": " + std::to_string(retired_seen) +
           ", \"min_depth\": " + std::to_string(min_depth) +
           ", \"max_depth\": " + std::to_string(max_depth) +
           ", \"avg_depth\": " + std::to_string(avg_depth()) +
           ", \"keys\": " + std::to_string(keys) +
           ", \"capacity\": " + std::to_string(capacity) +
           ", \"fill_factor\": " + std::to_string(fill_factor()) +
           ", \"gap_density\": " + std::to_string(gap_density()) +
           ", \"chain_length\": " + std::to_string(chain_length) +
           ", \"unbounded_leaves\": " + std::to_string(unbounded_leaves) +
           ", \"model_error\": {\"count\": " +
           std::to_string(model_error.Count()) +
           ", \"p50\": " + std::to_string(model_error.Quantile(0.50)) +
           ", \"p99\": " + std::to_string(model_error.Quantile(0.99)) +
           ", \"max\": " + std::to_string(model_error.Max()) + "}}";
  }
};

struct ShardStructure {
  uint32_t shard = 0;
  /// Cold shards (tier/segment.h) keep an empty tree; their contents
  /// live in an mmap-backed segment plus a small delta overlay.
  bool cold = false;
  TreeStructure tree;
};

/// The whole sharded index, one entry per live shard plus the merged
/// totals, stamped with the topology epoch the walk observed.
struct StructureReport {
  uint64_t topology_epoch = 0;
  std::vector<ShardStructure> shards;
  TreeStructure total;

  std::string ToJson() const {
    std::string out =
        "{\"topology_epoch\": " + std::to_string(topology_epoch) +
        ", \"num_shards\": " + std::to_string(shards.size()) +
        ", \"shards\": [";
    for (size_t i = 0; i < shards.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"shard\": " + std::to_string(shards[i].shard) +
             ", \"tree\": " + shards[i].tree.ToJson() + "}";
    }
    out += "], \"total\": " + total.ToJson() + "}";
    return out;
  }
};

// ---------------------------------------------------------------------------
// Chrome-trace export.

/// The slow-op ring and the event journal as one chrome://tracing /
/// Perfetto JSON document. Slow ops are duration ("X") events placed on
/// a per-shard track (tid = shard; cross-shard ops land on tid 0 under a
/// distinct name suffix); journal records are instant ("i") events with
/// global scope. Both use the shared TicksToNs timeline, microseconds.
inline std::string ChromeTraceJson() {
  char buf[256];
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const SlowOpRecord& rec : MetricsRegistry::Global().slow_ops().Snapshot()) {
    if (!first) out += ",";
    first = false;
    const bool cross = rec.shard == kShardAll;
    const double dur_us = static_cast<double>(rec.duration_ns) / 1e3;
    const double start_us =
        rec.ts_ns > rec.duration_ns
            ? static_cast<double>(rec.ts_ns - rec.duration_ns) / 1e3
            : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\": \"%s%s\", \"cat\": \"slow_op\", \"ph\": \"X\""
                  ", \"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
                  OpName(rec.op), cross ? " (cross-shard)" : "", start_us,
                  dur_us, cross ? 0u : rec.shard);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ", \"args\": {\"descent_retries\": %u, \"leaf_splits\": %u"
                  ", \"wal_wait_ns\": %" PRIu64 "}}",
                  rec.descent_retries, rec.leaf_splits, rec.wal_wait_ns);
    out += buf;
  }
  for (const JournalEvent& e : GlobalJournal().Snapshot()) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\": \"%s\", \"cat\": \"journal\", \"ph\": \"i\""
                  ", \"s\": \"g\", \"ts\": %.3f, \"pid\": 1, \"tid\": 0",
                  EventName(e.type),
                  static_cast<double>(e.ts_ns) / 1e3);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ", \"args\": {\"shard\": %u, \"wal_id\": %" PRIu64
                  ", \"lsn\": %" PRIu64 ", \"a\": %" PRId64 ", \"b\": %" PRId64
                  "}}",
                  e.shard, e.wal_id, e.lsn, e.a, e.b);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

/// Writes ChromeTraceJson() to `path`. Returns false when the file cannot
/// be opened or fully written.
inline bool WriteChromeTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = ChromeTraceJson();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace alex::obs
