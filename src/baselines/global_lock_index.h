// The coarse end of the paper's §7 concurrency design space: one
// reader-writer lock over the whole index. This was ConcurrentAlex's
// original implementation; it is kept as a baseline so the concurrency
// benches can quantify what fine-grained per-leaf latching buys
// (bench/concurrency_scaling.cc).
//
// Lookups and scans take shared ownership; every mutation takes exclusive
// ownership, so writers serialize against everything.
#pragma once

#include <cstddef>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "core/alex.h"
#include "core/config.h"

namespace alex::baseline {

/// A globally reader-writer-locked ALEX. Same API as core::ConcurrentAlex.
template <typename K, typename P>
class GlobalLockAlex {
 public:
  explicit GlobalLockAlex(const core::Config& config = core::Config())
      : index_(config) {}

  /// Replaces the contents (exclusive).
  void BulkLoad(const K* keys, const P* payloads, size_t n) {
    std::unique_lock lock(mutex_);
    index_.BulkLoad(keys, payloads, n);
  }

  /// Copies the payload of `key` into `*out`; returns false when absent
  /// (shared — concurrent with other reads).
  bool Get(K key, P* out) const {
    std::shared_lock lock(mutex_);
    const P* p = index_.Find(key);
    if (p == nullptr) return false;
    *out = *p;
    return true;
  }

  /// True when `key` is present (shared).
  bool Contains(K key) const {
    std::shared_lock lock(mutex_);
    return index_.Find(key) != nullptr;
  }

  /// Inserts; false on duplicate (exclusive).
  bool Insert(K key, const P& payload) {
    std::unique_lock lock(mutex_);
    return index_.Insert(key, payload);
  }

  /// Removes `key`; false when absent (exclusive).
  bool Erase(K key) {
    std::unique_lock lock(mutex_);
    return index_.Erase(key);
  }

  /// Overwrites an existing payload; false when absent (exclusive: the
  /// write must not race shared readers copying the payload).
  bool Update(K key, const P& payload) {
    std::unique_lock lock(mutex_);
    return index_.Update(key, payload);
  }

  /// Inserts or overwrites (exclusive).
  void Put(K key, const P& payload) {
    std::unique_lock lock(mutex_);
    if (!index_.Insert(key, payload)) {
      index_.Update(key, payload);
    }
  }

  /// Range scan into `out` (shared; Alex::RangeScan is const).
  size_t RangeScan(K start, size_t max_results,
                   std::vector<std::pair<K, P>>* out) const {
    std::shared_lock lock(mutex_);
    return index_.RangeScan(start, max_results, out);
  }

  size_t size() const {
    std::shared_lock lock(mutex_);
    return index_.size();
  }

  size_t IndexSizeBytes() const {
    std::shared_lock lock(mutex_);
    return index_.IndexSizeBytes();
  }

  size_t DataSizeBytes() const {
    std::shared_lock lock(mutex_);
    return index_.DataSizeBytes();
  }

  /// Snapshot of the operation counters (shared).
  core::Stats GetStats() const {
    std::shared_lock lock(mutex_);
    return index_.stats();
  }

 private:
  mutable std::shared_mutex mutex_;
  core::Alex<K, P> index_;
};

}  // namespace alex::baseline
