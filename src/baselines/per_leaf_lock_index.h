// The middle of the paper's §7 concurrency design space: per-leaf latches
// under a tree-level reader-writer structure lock. This was ConcurrentAlex
// before the lock-free read path landed (see core/concurrent_alex.h for
// the current design); it is kept as a baseline so the concurrency benches
// can quantify what removing the shared-counter RMW per read buys
// (bench/concurrency_scaling.cc), alongside the coarse global-lock
// baseline (baselines/global_lock_index.h).
//
// Two lock levels:
//
//   * a tree-level structure lock (`structure_mutex_`), held SHARED by
//     every point operation and EXCLUSIVE only by structural
//     modifications — bulk load and data-node splits, the operations that
//     rewrite inner nodes, child pointers or the leaf sibling chain;
//   * a per-data-node reader-writer latch (`DataNode::latch()`), taken
//     shared by lookups/scans of that leaf and exclusive by leaf-local
//     mutations (insert/erase/update, including in-place expansion,
//     retraining and contraction — none of which move the node).
//
// The descent through the RMI inner nodes is latch-free: while the
// structure lock is held shared, inner nodes and child pointers are
// immutable, so one model inference per level reaches the correct leaf
// with no per-node latching and no key comparisons. An insert that hits
// the adaptive-RMI split bound escalates: it drops its shared ownership,
// reacquires exclusively, and unconditionally re-descends from the root.
//
// The cost this baseline measures: every point operation performs one
// shared-counter RMW on the structure lock, and every split serializes
// the whole tree.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "core/alex.h"
#include "core/config.h"
#include "core/data_node.h"

namespace alex::baseline {

/// A fine-grained-locked ALEX with a shared tree-level structure lock.
/// Same API as core::ConcurrentAlex. All methods are safe to call from any
/// thread; reads copy payloads out.
template <typename K, typename P>
class PerLeafLockAlex {
 public:
  using DataNodeT = typename core::Alex<K, P>::DataNodeT;
  using InsertResult = core::InsertResult;

  explicit PerLeafLockAlex(const core::Config& config = core::Config())
      : index_(config) {}

  /// Replaces the contents (structural: tree-exclusive).
  void BulkLoad(const K* keys, const P* payloads, size_t n) {
    std::unique_lock structure(structure_mutex_);
    index_.BulkLoad(keys, payloads, n);
  }

  /// Copies the payload of `key` into `*out`; returns false when absent.
  /// Takes the structure lock shared and the target leaf's latch shared:
  /// concurrent with all other reads and with writes to other leaves.
  bool Get(K key, P* out) const {
    std::shared_lock structure(structure_mutex_);
    const DataNodeT* leaf = index_.FindLeaf(key);
    std::shared_lock latch(leaf->latch());
    const P* p = leaf->Find(key);
    if (p == nullptr) return false;
    *out = *p;
    return true;
  }

  /// True when `key` is present (shared paths only).
  bool Contains(K key) const {
    std::shared_lock structure(structure_mutex_);
    const DataNodeT* leaf = index_.FindLeaf(key);
    std::shared_lock latch(leaf->latch());
    return leaf->Find(key) != nullptr;
  }

  /// Inserts; false on duplicate. Fast path: tree-shared + leaf-exclusive.
  /// Only when the leaf reports kNeedsSplit does the insert escalate to
  /// the tree-exclusive structural path.
  bool Insert(K key, const P& payload) {
    {
      std::shared_lock structure(structure_mutex_);
      DataNodeT* leaf = index_.FindLeaf(key);
      std::unique_lock latch(leaf->latch());
      const InsertResult result = leaf->Insert(key, payload);
      if (result == InsertResult::kOk) {
        index_.num_keys_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (result == InsertResult::kDuplicate) return false;
      // kNeedsSplit: fall through to the structural path below. The leaf
      // pointer is stale once the shared lock is released; the exclusive
      // path re-descends.
    }
    std::unique_lock structure(structure_mutex_);
    return index_.Insert(key, payload);
  }

  /// Removes `key`; false when absent. Contraction happens in place under
  /// the leaf latch; erase never escalates.
  bool Erase(K key) {
    std::shared_lock structure(structure_mutex_);
    DataNodeT* leaf = index_.FindLeaf(key);
    std::unique_lock latch(leaf->latch());
    if (!leaf->Erase(key)) return false;
    index_.num_keys_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Overwrites an existing payload; false when absent.
  bool Update(K key, const P& payload) {
    std::shared_lock structure(structure_mutex_);
    DataNodeT* leaf = index_.FindLeaf(key);
    std::unique_lock latch(leaf->latch());
    return leaf->UpdatePayload(key, payload);
  }

  /// Inserts or overwrites, atomically with respect to other operations on
  /// the key's leaf.
  void Put(K key, const P& payload) {
    {
      std::shared_lock structure(structure_mutex_);
      DataNodeT* leaf = index_.FindLeaf(key);
      std::unique_lock latch(leaf->latch());
      const InsertResult result = leaf->Insert(key, payload);
      if (result == InsertResult::kOk) {
        index_.num_keys_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (result == InsertResult::kDuplicate) {
        leaf->UpdatePayload(key, payload);
        return;
      }
    }
    std::unique_lock structure(structure_mutex_);
    if (!index_.Insert(key, payload)) {
      index_.Update(key, payload);
    }
  }

  /// Range scan into `out`. Read-committed per leaf.
  size_t RangeScan(K start, size_t max_results,
                   std::vector<std::pair<K, P>>* out) const {
    out->clear();
    std::shared_lock structure(structure_mutex_);
    const DataNodeT* leaf = index_.FindLeaf(start);
    bool first = true;
    while (leaf != nullptr && out->size() < max_results) {
      std::shared_lock latch(leaf->latch());
      const size_t slot = first ? leaf->LowerBoundSlot(start) : 0;
      first = false;
      leaf->ScanFrom(slot, max_results - out->size(), out);
      leaf = leaf->next_leaf();
    }
    return out->size();
  }

  size_t size() const { return index_.size(); }

  size_t IndexSizeBytes() const {
    std::unique_lock structure(structure_mutex_);
    return index_.IndexSizeBytes();
  }

  size_t DataSizeBytes() const {
    std::unique_lock structure(structure_mutex_);
    return index_.DataSizeBytes();
  }

  /// Snapshot of the operation counters.
  core::Stats GetStats() const { return index_.stats(); }

  /// Full structural-invariant check under the exclusive lock. Test hook.
  bool CheckInvariants() const {
    std::unique_lock structure(structure_mutex_);
    return index_.CheckInvariants();
  }

 private:
  mutable std::shared_mutex structure_mutex_;
  core::Alex<K, P> index_;
};

}  // namespace alex::baseline
