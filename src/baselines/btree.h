// In-memory B+Tree baseline (paper §5.1: "The first baseline is a standard
// B+Tree, as implemented in the STX B+Tree"). Like STX, this is a plain
// main-memory B+Tree: sorted key arrays per node, binary search within
// nodes, leaf-level sibling links for range scans. Node capacity (the
// paper's "page size") is a runtime parameter so benchmarks can grid-search
// it exactly as the paper does.
//
// Deletes remove from the leaf without rebalancing (lazy deletion) — the
// paper's benchmarks never delete; the simplification is documented in
// DESIGN.md and covered by tests.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/search.h"

namespace alex::baseline {

/// A B+Tree map from arithmetic keys to payloads.
template <typename K, typename P>
class BPlusTree {
 public:
  /// `node_capacity` is the max keys per node (leaf and inner); the
  /// paper's tunable "page size". Minimum 4.
  explicit BPlusTree(size_t node_capacity = 64)
      : node_capacity_(node_capacity < 4 ? 4 : node_capacity) {
    root_ = NewLeaf();
  }

  ~BPlusTree() { DeleteSubtree(root_); }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  BPlusTree(BPlusTree&& other) noexcept
      : node_capacity_(other.node_capacity_),
        root_(other.root_),
        num_keys_(other.num_keys_) {
    other.root_ = nullptr;
    other.num_keys_ = 0;
  }

  size_t size() const { return num_keys_; }
  bool empty() const { return num_keys_ == 0; }
  size_t node_capacity() const { return node_capacity_; }

  /// Bulk-loads from `n` strictly-increasing keys, replacing contents.
  /// Leaves are filled to ~70% so subsequent inserts do not split
  /// immediately (standard B+Tree bulk-load practice).
  void BulkLoad(const K* keys, const P* payloads, size_t n) {
    DeleteSubtree(root_);
    root_ = nullptr;
    num_keys_ = n;
    const size_t fill = std::max<size_t>(2, node_capacity_ * 7 / 10);
    // Build the leaf level.
    std::vector<Node*> level;
    std::vector<K> separators;
    Leaf* prev = nullptr;
    for (size_t i = 0; i < n;) {
      const size_t take = std::min(fill, n - i);
      Leaf* leaf = NewLeaf();
      leaf->keys.assign(keys + i, keys + i + take);
      leaf->payloads.assign(payloads + i, payloads + i + take);
      if (prev != nullptr) prev->next = leaf;
      prev = leaf;
      if (!level.empty()) separators.push_back(keys[i]);
      level.push_back(leaf);
      i += take;
    }
    if (level.empty()) {
      root_ = NewLeaf();
      return;
    }
    // Build inner levels bottom-up. The separator between global children
    // i and i+1 is separators[i]; a chunk [i, i+take) keeps its internal
    // separators and promotes separators[i-1] (its left boundary) to the
    // parent.
    while (level.size() > 1) {
      std::vector<Node*> parent_level;
      std::vector<K> parent_separators;
      size_t i = 0;
      while (i < level.size()) {
        const size_t take = std::min(fill + 1, level.size() - i);
        Inner* inner = NewInner();
        inner->children.assign(level.begin() + i, level.begin() + i + take);
        inner->keys.assign(separators.begin() + i,
                           separators.begin() + i + take - 1);
        if (!parent_level.empty()) {
          parent_separators.push_back(separators[i - 1]);
        }
        parent_level.push_back(inner);
        i += take;
      }
      level = std::move(parent_level);
      separators = std::move(parent_separators);
    }
    root_ = level.front();
  }

  /// Point lookup; returns payload pointer or nullptr.
  P* Find(K key) {
    Leaf* leaf = TraverseToLeaf(key);
    const size_t pos = util::BinarySearchLowerBound(
        leaf->keys.data(), 0, leaf->keys.size(), key);
    if (pos < leaf->keys.size() && leaf->keys[pos] == key) {
      return &leaf->payloads[pos];
    }
    return nullptr;
  }

  bool Contains(K key) { return Find(key) != nullptr; }

  /// Inserts; returns false on duplicate key.
  bool Insert(K key, const P& payload) {
    K up_key{};
    Node* up_node = nullptr;
    const InsertStatus status =
        InsertRecursive(root_, key, payload, &up_key, &up_node);
    if (status == InsertStatus::kDuplicate) return false;
    if (status == InsertStatus::kSplit) {
      Inner* new_root = NewInner();
      new_root->keys.push_back(up_key);
      new_root->children.push_back(root_);
      new_root->children.push_back(up_node);
      root_ = new_root;
    }
    ++num_keys_;
    return true;
  }

  /// Removes `key`; returns false when absent. Lazy deletion: the leaf is
  /// not rebalanced or merged.
  bool Erase(K key) {
    Leaf* leaf = TraverseToLeaf(key);
    const size_t pos = util::BinarySearchLowerBound(
        leaf->keys.data(), 0, leaf->keys.size(), key);
    if (pos >= leaf->keys.size() || !(leaf->keys[pos] == key)) return false;
    leaf->keys.erase(leaf->keys.begin() + pos);
    leaf->payloads.erase(leaf->payloads.begin() + pos);
    --num_keys_;
    return true;
  }

  /// Overwrites an existing payload; false when absent.
  bool Update(K key, const P& payload) {
    P* p = Find(key);
    if (p == nullptr) return false;
    *p = payload;
    return true;
  }

  /// Reads up to `max_results` pairs with key >= `start` in key order.
  size_t RangeScan(K start, size_t max_results,
                   std::vector<std::pair<K, P>>* out) {
    out->clear();
    Leaf* leaf = TraverseToLeaf(start);
    size_t pos = util::BinarySearchLowerBound(leaf->keys.data(), 0,
                                              leaf->keys.size(), start);
    while (leaf != nullptr && out->size() < max_results) {
      if (pos >= leaf->keys.size()) {
        leaf = leaf->next;
        pos = 0;
        continue;
      }
      out->emplace_back(leaf->keys[pos], leaf->payloads[pos]);
      ++pos;
    }
    return out->size();
  }

  /// Index size = inner nodes only (paper §5.1: "The index size of B+Tree
  /// is the sum of the sizes of all inner nodes").
  size_t IndexSizeBytes() const {
    size_t total = 0;
    Visit(root_, [&](const Node* node) {
      if (!node->is_leaf) {
        const auto* inner = static_cast<const Inner*>(node);
        total += sizeof(Inner) + inner->keys.capacity() * sizeof(K) +
                 inner->children.capacity() * sizeof(Node*);
      }
    });
    return total;
  }

  /// Data size = all leaf nodes (paper §5.1).
  size_t DataSizeBytes() const {
    size_t total = 0;
    Visit(root_, [&](const Node* node) {
      if (node->is_leaf) {
        const auto* leaf = static_cast<const Leaf*>(node);
        total += sizeof(Leaf) + leaf->keys.capacity() * sizeof(K) +
                 leaf->payloads.capacity() * sizeof(P);
      }
    });
    return total;
  }

  /// Tree height (leaf depth; 0 when the root is a leaf).
  size_t Height() const {
    size_t h = 0;
    const Node* node = root_;
    while (!node->is_leaf) {
      node = static_cast<const Inner*>(node)->children.front();
      ++h;
    }
    return h;
  }

  /// Verifies sortedness, separator consistency and key count. Test hook.
  bool CheckInvariants() const {
    size_t counted = 0;
    bool ok = true;
    bool have_prev = false;
    K prev{};
    // Walk the leaf chain.
    const Node* node = root_;
    while (!node->is_leaf) {
      node = static_cast<const Inner*>(node)->children.front();
    }
    for (const Leaf* leaf = static_cast<const Leaf*>(node); leaf != nullptr;
         leaf = leaf->next) {
      for (const K& k : leaf->keys) {
        if (have_prev && !(prev < k)) ok = false;
        prev = k;
        have_prev = true;
        ++counted;
      }
      if (leaf->keys.size() != leaf->payloads.size()) ok = false;
    }
    return ok && counted == num_keys_;
  }

 private:
  struct Node {
    explicit Node(bool leaf) : is_leaf(leaf) {}
    bool is_leaf;
  };
  struct Leaf : Node {
    Leaf() : Node(true) {}
    std::vector<K> keys;
    std::vector<P> payloads;
    Leaf* next = nullptr;
  };
  struct Inner : Node {
    Inner() : Node(false) {}
    // children.size() == keys.size() + 1; child i holds keys <
    // keys[i], child i+1 holds keys >= keys[i].
    std::vector<K> keys;
    std::vector<Node*> children;
  };

  enum class InsertStatus { kOk, kDuplicate, kSplit };

  Leaf* NewLeaf() { return new Leaf(); }
  Inner* NewInner() { return new Inner(); }

  Leaf* TraverseToLeaf(K key) const {
    Node* node = root_;
    while (!node->is_leaf) {
      Inner* inner = static_cast<Inner*>(node);
      const size_t pos = util::BinarySearchUpperBound(
          inner->keys.data(), 0, inner->keys.size(), key);
      node = inner->children[pos];
    }
    return static_cast<Leaf*>(node);
  }

  InsertStatus InsertRecursive(Node* node, K key, const P& payload,
                               K* up_key, Node** up_node) {
    if (node->is_leaf) {
      Leaf* leaf = static_cast<Leaf*>(node);
      const size_t pos = util::BinarySearchLowerBound(
          leaf->keys.data(), 0, leaf->keys.size(), key);
      if (pos < leaf->keys.size() && leaf->keys[pos] == key) {
        return InsertStatus::kDuplicate;
      }
      leaf->keys.insert(leaf->keys.begin() + pos, key);
      leaf->payloads.insert(leaf->payloads.begin() + pos, payload);
      if (leaf->keys.size() <= node_capacity_) return InsertStatus::kOk;
      // Split the leaf in half; the first key of the right half moves up.
      const size_t mid = leaf->keys.size() / 2;
      Leaf* right = NewLeaf();
      right->keys.assign(leaf->keys.begin() + mid, leaf->keys.end());
      right->payloads.assign(leaf->payloads.begin() + mid,
                             leaf->payloads.end());
      leaf->keys.resize(mid);
      leaf->payloads.resize(mid);
      right->next = leaf->next;
      leaf->next = right;
      *up_key = right->keys.front();
      *up_node = right;
      return InsertStatus::kSplit;
    }
    Inner* inner = static_cast<Inner*>(node);
    const size_t pos = util::BinarySearchUpperBound(
        inner->keys.data(), 0, inner->keys.size(), key);
    K child_up_key{};
    Node* child_up_node = nullptr;
    const InsertStatus status = InsertRecursive(
        inner->children[pos], key, payload, &child_up_key, &child_up_node);
    if (status != InsertStatus::kSplit) return status;
    inner->keys.insert(inner->keys.begin() + pos, child_up_key);
    inner->children.insert(inner->children.begin() + pos + 1,
                           child_up_node);
    if (inner->keys.size() <= node_capacity_) return InsertStatus::kOk;
    // Split the inner node; the middle key moves up (not copied).
    const size_t mid = inner->keys.size() / 2;
    Inner* right = NewInner();
    *up_key = inner->keys[mid];
    right->keys.assign(inner->keys.begin() + mid + 1, inner->keys.end());
    right->children.assign(inner->children.begin() + mid + 1,
                           inner->children.end());
    inner->keys.resize(mid);
    inner->children.resize(mid + 1);
    *up_node = right;
    return InsertStatus::kSplit;
  }

  template <typename F>
  static void Visit(const Node* node, F&& fn) {
    if (node == nullptr) return;
    fn(node);
    if (!node->is_leaf) {
      for (const Node* child : static_cast<const Inner*>(node)->children) {
        Visit(child, fn);
      }
    }
  }

  // Nodes are deliberately vtable-free, so deletion must go through the
  // concrete type: deleting a Leaf/Inner via Node* is UB and leaks the
  // member vectors.
  static void DeleteSubtree(Node* node) {
    if (node == nullptr) return;
    if (node->is_leaf) {
      delete static_cast<Leaf*>(node);
      return;
    }
    Inner* inner = static_cast<Inner*>(node);
    for (Node* child : inner->children) {
      DeleteSubtree(child);
    }
    delete inner;
  }

  size_t node_capacity_;
  Node* root_ = nullptr;
  size_t num_keys_ = 0;
};

}  // namespace alex::baseline
