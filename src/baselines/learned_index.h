// Learned Index baseline — best-effort reimplementation of Kraska et al.
// [17], exactly as the paper's own baseline (§5.1): "a two-level RMI with
// linear models at each node and binary search for lookups". Keys live in a
// single dense sorted array; each second-level model stores min/max error
// bounds and lookups binary-search within them (§2.2).
//
// Inserts use the naive strategy of §2.3 — shift the entire tail of the
// array — and retrain after a configurable fraction of new keys. The paper
// measures this only for Fig. 8 (shifts per insert) and excludes the
// Learned Index from read-write throughput plots because insert time is
// "orders of magnitude slower"; this implementation reproduces both facts.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "models/linear_model.h"
#include "util/search.h"

namespace alex::baseline {

/// Two-level RMI over a dense sorted array (Kraska et al.'s design).
template <typename K, typename P>
class LearnedIndex {
 public:
  /// `num_models` is the second-level model count — the paper's tunable,
  /// grid-searched per dataset (§5.1; e.g. 50000 models on YCSB).
  explicit LearnedIndex(size_t num_models = 1024)
      : num_models_(num_models < 1 ? 1 : num_models) {}

  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }
  size_t num_models() const { return num_models_; }

  /// Cumulative element moves caused by naive inserts (Fig. 8 numerator).
  uint64_t num_shifts() const { return num_shifts_; }
  uint64_t num_inserts() const { return num_inserts_; }

  /// Bulk-loads `n` strictly-increasing keys and trains the RMI. Unlike
  /// ALEX, the array is densely packed and key positions are not changed
  /// by the models (no model-based insertion, §3.2).
  void BulkLoad(const K* keys, const P* payloads, size_t n) {
    keys_.assign(keys, keys + n);
    payloads_.assign(payloads, payloads + n);
    inserts_since_retrain_ = 0;
    Retrain();
  }

  /// Point lookup via root model -> leaf model -> bounded binary search.
  P* Find(K key) {
    if (keys_.empty()) return nullptr;
    const size_t pos = SearchLowerBound(key);
    if (pos < keys_.size() && keys_[pos] == key) return &payloads_[pos];
    return nullptr;
  }

  bool Contains(K key) { return Find(key) != nullptr; }

  /// Naive insert (§2.3): find the position, shift the tail right by one,
  /// write, and periodically retrain. O(n) per insert. Returns false on
  /// duplicate.
  bool Insert(K key, const P& payload) {
    const size_t pos = SearchLowerBound(key);
    if (pos < keys_.size() && keys_[pos] == key) return false;
    keys_.insert(keys_.begin() + pos, key);
    payloads_.insert(payloads_.begin() + pos, payload);
    num_shifts_ += keys_.size() - 1 - pos;
    ++num_inserts_;
    ++inserts_since_retrain_;
    // "As data are inserted, the RMI models get less accurate over time,
    // which requires model retraining" (§2.3). Retrain after 5% growth;
    // between retrains, error bounds are widened incrementally so lookups
    // stay correct.
    if (inserts_since_retrain_ * 20 >= keys_.size()) {
      Retrain();
      inserts_since_retrain_ = 0;
    } else {
      WidenBoundsFor(pos);
    }
    return true;
  }

  /// Removes `key` by shifting the tail left. Returns false when absent.
  bool Erase(K key) {
    const size_t pos = SearchLowerBound(key);
    if (pos >= keys_.size() || !(keys_[pos] == key)) return false;
    num_shifts_ += keys_.size() - 1 - pos;
    keys_.erase(keys_.begin() + pos);
    payloads_.erase(payloads_.begin() + pos);
    // Positions left of `pos` are unchanged; positions right shift by one,
    // which stored bounds may no longer cover. Widen conservatively.
    if (!models_.empty()) {
      for (auto& m : models_) m.min_error -= 1;
    }
    return true;
  }

  /// Reads up to `max_results` pairs with key >= `start` in key order.
  size_t RangeScan(K start, size_t max_results,
                   std::vector<std::pair<K, P>>* out) {
    out->clear();
    for (size_t pos = SearchLowerBound(start);
         pos < keys_.size() && out->size() < max_results; ++pos) {
      out->emplace_back(keys_[pos], payloads_[pos]);
    }
    return out->size();
  }

  /// Index size: root model + second-level models. Each model stores two
  /// doubles plus two 4-byte error bounds (paper §5.1: "The models used in
  /// the Learned Index keep two additional integers that represent the
  /// error bounds used in binary search").
  size_t IndexSizeBytes() const {
    const size_t per_model =
        model::LinearModel::SizeBytes() + 2 * sizeof(int32_t);
    return model::LinearModel::SizeBytes() + models_.size() * per_model;
  }

  /// Data size: the dense sorted arrays.
  size_t DataSizeBytes() const {
    return keys_.capacity() * sizeof(K) + payloads_.capacity() * sizeof(P);
  }

  /// Absolute prediction error for `key` if present (Fig. 7a input):
  /// |predicted position - actual position|.
  size_t PredictionError(K key) const {
    if (keys_.empty()) return 0;
    const size_t predicted = PredictPosition(key);
    const size_t actual = util::BinarySearchLowerBound(
        keys_.data(), 0, keys_.size(), key);
    return predicted > actual ? predicted - actual : actual - predicted;
  }

  /// Retrains the full RMI (root + all second-level models + bounds).
  void Retrain() {
    const size_t n = keys_.size();
    models_.assign(num_models_, LeafModel{});
    if (n == 0) {
      root_ = model::LinearModel();
      return;
    }
    root_ = model::TrainCdfModel(keys_.data(), n, num_models_);
    // Assign keys to second-level models by root prediction (contiguous
    // ranges because the root is monotone on sorted keys).
    size_t start = 0;
    for (size_t m = 0; m < num_models_ && start < n; ++m) {
      size_t end = start;
      while (end < n &&
             root_.Predict(static_cast<double>(keys_[end]), num_models_) ==
                 m) {
        ++end;
      }
      TrainLeafModel(&models_[m], start, end);
      start = end;
    }
  }

 private:
  struct LeafModel {
    model::LinearModel model;
    // Error bounds: for every key in the model's range,
    // actual position ∈ [predicted + min_error, predicted + max_error].
    int64_t min_error = 0;
    int64_t max_error = 0;
    bool trained = false;
  };

  size_t PredictPosition(K key) const {
    const size_t m =
        root_.Predict(static_cast<double>(key), models_.size());
    const LeafModel& leaf = models_[m];
    if (!leaf.trained) return 0;
    return leaf.model.Predict(static_cast<double>(key), keys_.size());
  }

  // Lower bound using the RMI: predict, then binary search within the
  // stored error bounds; fall back to a full binary search if the bounded
  // window misses (can only happen transiently between retrains).
  size_t SearchLowerBound(K key) const {
    const size_t n = keys_.size();
    if (n == 0) return 0;
    const size_t m =
        root_.Predict(static_cast<double>(key), models_.size());
    const LeafModel& leaf = models_[m];
    if (!leaf.trained) {
      return util::BinarySearchLowerBound(keys_.data(), 0, n, key);
    }
    const auto predicted = static_cast<int64_t>(
        leaf.model.Predict(static_cast<double>(key), n));
    int64_t lo = predicted + leaf.min_error;
    int64_t hi = predicted + leaf.max_error + 1;
    if (lo < 0) lo = 0;
    if (hi > static_cast<int64_t>(n)) hi = static_cast<int64_t>(n);
    if (lo > hi) lo = hi;
    size_t pos = util::BinarySearchLowerBound(
        keys_.data(), static_cast<size_t>(lo), static_cast<size_t>(hi),
        key);
    // Validate the bounded result; the window can be stale between
    // retrains after inserts into *other* models' ranges.
    const bool pos_ok =
        (pos == 0 || keys_[pos - 1] < key) &&
        (pos == n || !(keys_[pos] < key));
    if (!pos_ok) {
      pos = util::BinarySearchLowerBound(keys_.data(), 0, n, key);
    }
    return pos;
  }

  void TrainLeafModel(LeafModel* leaf, size_t start, size_t end) {
    leaf->trained = end > start;
    if (!leaf->trained) return;
    model::LinearModelBuilder builder;
    for (size_t i = start; i < end; ++i) {
      builder.Add(static_cast<double>(keys_[i]), static_cast<double>(i));
    }
    leaf->model = builder.Build();
    leaf->min_error = 0;
    leaf->max_error = 0;
    for (size_t i = start; i < end; ++i) {
      const auto predicted = static_cast<int64_t>(leaf->model.Predict(
          static_cast<double>(keys_[i]), keys_.size()));
      const int64_t err = static_cast<int64_t>(i) - predicted;
      leaf->min_error = std::min(leaf->min_error, err);
      leaf->max_error = std::max(leaf->max_error, err);
    }
  }

  // After inserting at `pos`, every stored position >= pos moved one to
  // the right; widen all bounds by one on the side that could now miss.
  // (Coarse but correct; retraining restores tight bounds.)
  void WidenBoundsFor(size_t pos) {
    for (auto& m : models_) {
      if (!m.trained) continue;
      m.min_error -= 1;
      m.max_error += 1;
    }
    (void)pos;
  }

  size_t num_models_;
  model::LinearModel root_;
  std::vector<LeafModel> models_;
  std::vector<K> keys_;
  std::vector<P> payloads_;
  uint64_t num_shifts_ = 0;
  uint64_t num_inserts_ = 0;
  size_t inserts_since_retrain_ = 0;
};

}  // namespace alex::baseline
