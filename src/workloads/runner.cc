#include "workloads/workload.h"

namespace alex::workload {

const char* WorkloadName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kReadOnly:
      return "read-only";
    case WorkloadKind::kReadHeavy:
      return "read-heavy";
    case WorkloadKind::kWriteHeavy:
      return "write-heavy";
    case WorkloadKind::kRangeScan:
      return "range-scan";
    case WorkloadKind::kScanHeavy:
      return "scan-heavy";
  }
  return "unknown";
}

size_t ReadsPerInsert(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kReadOnly:
      return 0;  // never inserts
    case WorkloadKind::kReadHeavy:
    case WorkloadKind::kRangeScan:
    case WorkloadKind::kScanHeavy:
      return 19;
    case WorkloadKind::kWriteHeavy:
      return 1;
  }
  return 0;
}

bool IsScanWorkload(WorkloadKind kind) {
  return kind == WorkloadKind::kRangeScan ||
         kind == WorkloadKind::kScanHeavy;
}

}  // namespace alex::workload
