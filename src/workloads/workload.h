// YCSB-style workload definitions (paper §5.1.2). Five workloads:
//
//   read-only   — 100% point lookups                 (~ YCSB C)
//   read-heavy  — 95% lookups / 5% inserts           (~ YCSB B)
//   write-heavy — 50% lookups / 50% inserts          (~ YCSB A)
//   range-scan  — 95% scans (lookup + scan <=100) / 5% inserts (~ YCSB E)
//   scan-heavy  — 95% range *counts* / 5% inserts; analytics-style. Each
//                 count covers [k, k + selectivity × keyspan] for a
//                 Zipfian k — the range width is a fraction of the key
//                 space (the selectivity knob), not a result-count cap,
//                 so it exercises the pushed-down aggregate path.
//
// Lookup keys are drawn Zipfian from the *existing* keys so every lookup
// finds a match; reads and inserts are interleaved in fixed cycles (19
// reads : 1 insert for the 95/5 workloads, 1:1 for 50/50) to simulate
// real-time usage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace alex::workload {

/// The four workloads of §5.1.2 in paper order, plus the analytics-style
/// scan-heavy extension.
enum class WorkloadKind {
  kReadOnly,
  kReadHeavy,
  kWriteHeavy,
  kRangeScan,
  kScanHeavy,
};

inline constexpr WorkloadKind kAllWorkloads[] = {
    WorkloadKind::kReadOnly, WorkloadKind::kReadHeavy,
    WorkloadKind::kWriteHeavy, WorkloadKind::kRangeScan,
    WorkloadKind::kScanHeavy};

/// Human-readable name matching the paper's figure captions.
const char* WorkloadName(WorkloadKind kind);

/// Reads per insert in the interleave cycle (paper: 19 reads then 1 insert
/// for read-heavy/range-scan; 1 read then 1 insert for write-heavy;
/// read-only never inserts).
size_t ReadsPerInsert(WorkloadKind kind);

/// True when the workload performs range scans instead of point lookups.
bool IsScanWorkload(WorkloadKind kind);

/// Runtime parameters for a workload execution.
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kReadOnly;
  /// Zipfian skew for lookup-key selection (YCSB default).
  double zipf_theta = 0.99;
  /// Maximum range-scan length; actual lengths are uniform in [1, max]
  /// (paper §5.1.2: "maximum scan length of 100").
  size_t max_scan_length = 100;
  /// kScanHeavy only: each range count covers this fraction of the
  /// loaded key span (range width = selectivity × (max key − min key)).
  double scan_selectivity = 0.01;
  /// Wall-clock budget; the run stops at whichever of time/ops comes
  /// first. The paper runs 60 s; laptop-scale default is 1 s.
  double seconds = 1.0;
  /// Upper bound on operations (0 = unlimited). Keeps benches bounded even
  /// on very fast configs.
  uint64_t max_ops = 0;
  uint64_t seed = 7;
};

/// Result of a workload execution.
struct WorkloadResult {
  uint64_t ops = 0;           ///< completed operations (reads + inserts)
  uint64_t reads = 0;         ///< point lookups or scans
  uint64_t inserts = 0;       ///< completed inserts
  uint64_t scanned_keys = 0;  ///< total keys touched by scans
  double elapsed_seconds = 0.0;
  size_t index_size_bytes = 0;  ///< model/pointer/metadata bytes (§5.1)
  size_t data_size_bytes = 0;   ///< key/payload arrays + bitmap bytes

  double Throughput() const {
    return elapsed_seconds > 0.0
               ? static_cast<double>(ops) / elapsed_seconds
               : 0.0;
  }
};

}  // namespace alex::workload
