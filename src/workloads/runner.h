// Workload runner (paper §5.1.2): initializes an index with a prefix of a
// dataset, then executes one of the four YCSB-style workloads against it,
// interleaving reads and inserts in fixed cycles and drawing lookup keys
// Zipfian from the keys currently in the index.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/random.h"
#include "util/timer.h"
#include "util/zipf.h"
#include "workloads/workload.h"

namespace alex::workload {

/// Splits a (shuffled) dataset into the bulk-load prefix and the insert
/// stream, mirroring the paper's setup ("we initialize an index with a
/// fixed number of keys ... then run the specified workload").
template <typename K>
struct WorkloadData {
  std::vector<K> init_keys;    ///< sorted; bulk-loaded before the run
  std::vector<K> insert_keys;  ///< insertion order for the workload
};

/// Prepares workload data from `keys` (need not be sorted): the first
/// `init_count` become the sorted bulk-load set, the rest the insert
/// stream.
template <typename K>
WorkloadData<K> SplitWorkloadData(const std::vector<K>& keys,
                                  size_t init_count) {
  WorkloadData<K> data;
  if (init_count > keys.size()) init_count = keys.size();
  data.init_keys.assign(keys.begin(), keys.begin() + init_count);
  std::sort(data.init_keys.begin(), data.init_keys.end());
  data.insert_keys.assign(keys.begin() + init_count, keys.end());
  return data;
}

/// Runs `spec` against `index`. The index must already be bulk-loaded with
/// `data.init_keys` (use PrepareIndex below). Returns throughput and the
/// two size metrics of §5.1.
///
/// Reads always find a key: lookup targets are drawn Zipfian over the keys
/// known to be in the index (init keys + inserted-so-far). The Zipf
/// distribution grows as inserts land, matching "selected randomly from
/// the set of existing keys in the index" (§5.1.2).
template <typename Index, typename K>
WorkloadResult RunWorkload(Index& index, const WorkloadData<K>& data,
                           const WorkloadSpec& spec) {
  WorkloadResult result;
  util::Xoshiro256 rng(spec.seed);
  // Pool of keys known to be present, in insertion order; Zipf ranks are
  // scrambled over it.
  std::vector<K> pool;
  pool.reserve(data.init_keys.size() + data.insert_keys.size());
  pool.insert(pool.end(), data.init_keys.begin(), data.init_keys.end());
  util::ScrambledZipfGenerator zipf(std::max<size_t>(1, pool.size()),
                                    spec.zipf_theta);
  const size_t reads_per_insert = ReadsPerInsert(spec.kind);
  const bool scans = IsScanWorkload(spec.kind);
  const bool range_counts = spec.kind == WorkloadKind::kScanHeavy;
  // kScanHeavy sizes each range as a fraction of the loaded key span, so
  // the selectivity knob means the same thing for every index under test.
  double range_width = 0.0;
  if (range_counts) {
    K key_min{};
    K key_max{};
    bool have_span = false;
    if (!data.init_keys.empty()) {  // init_keys are sorted
      key_min = data.init_keys.front();
      key_max = data.init_keys.back();
      have_span = true;
    }
    for (const K key : data.insert_keys) {
      if (!have_span) {
        key_min = key;
        key_max = key;
        have_span = true;
      } else {
        if (key < key_min) key_min = key;
        if (key_max < key) key_max = key;
      }
    }
    if (have_span) {
      range_width = spec.scan_selectivity * (static_cast<double>(key_max) -
                                             static_cast<double>(key_min));
    }
  }
  std::vector<std::pair<K, typename Index::payload_type>> scan_buffer;
  size_t next_insert = 0;
  size_t reads_in_cycle = 0;
  util::Timer timer;
  uint64_t ops_since_check = 0;
  while (true) {
    // Time/op budget check, amortized.
    if ((++ops_since_check & 0xFF) == 0) {
      if (timer.ElapsedSeconds() >= spec.seconds) break;
      if (spec.max_ops != 0 && result.ops >= spec.max_ops) break;
    }
    const bool do_insert =
        reads_per_insert > 0 && reads_in_cycle >= reads_per_insert &&
        next_insert < data.insert_keys.size();
    if (do_insert) {
      reads_in_cycle = 0;
      const K key = data.insert_keys[next_insert++];
      if (index.Insert(key, {})) {
        pool.push_back(key);
        zipf.Grow(pool.size());
      }
      ++result.inserts;
      ++result.ops;
      continue;
    }
    if (pool.empty()) break;
    ++reads_in_cycle;
    const K target = pool[zipf.Next(rng)];
    if (range_counts) {
      // Selectivity-sized range count: [target, target + width], clamped
      // against overflow via double arithmetic. Exercises each adapter's
      // CountRange — pushed-down aggregation where the index supports it,
      // materialize-then-reduce otherwise.
      const double hi_d = static_cast<double>(target) + range_width;
      const double max_d =
          static_cast<double>(std::numeric_limits<K>::max());
      const K hi = hi_d >= max_d ? std::numeric_limits<K>::max()
                                 : static_cast<K>(hi_d);
      result.scanned_keys += index.CountRange(target, hi);
    } else if (scans) {
      const size_t len = 1 + rng.NextUint64(spec.max_scan_length);
      const size_t got = index.RangeScan(target, len, &scan_buffer);
      result.scanned_keys += got;
    } else {
      // Lookups always find a matching key by construction; the branch
      // keeps the compiler from dropping the call.
      if (!index.Find(target)) ++result.scanned_keys;
    }
    ++result.reads;
    ++result.ops;
    // Pure-insert exhaustion: when a read-write workload runs out of keys
    // to insert it degrades to read-only, like the paper's fixed-duration
    // runs.
  }
  result.elapsed_seconds = timer.ElapsedSeconds();
  result.index_size_bytes = index.IndexSizeBytes();
  result.data_size_bytes = index.DataSizeBytes();
  return result;
}

/// Bulk-loads `index` with the init keys of `data`, synthesizing payloads.
template <typename Index, typename K, typename P>
void PrepareIndex(Index& index, const WorkloadData<K>& data, const P& fill) {
  std::vector<P> payloads(data.init_keys.size(), fill);
  index.BulkLoad(data.init_keys.data(), payloads.data(),
                 data.init_keys.size());
}

}  // namespace alex::workload
