// Uniform adapter interface over the four indexes (ALEX, B+Tree, Learned
// Index, Sharded ALEX) so the workload runner and benches are
// index-agnostic. Adapters are thin: they forward calls and expose the
// paper's two size metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "baselines/btree.h"
#include "baselines/learned_index.h"
#include "core/alex.h"
#include "shard/sharded_alex.h"

namespace alex::workload {

/// Fixed-size opaque payload; Table 1 uses 8-byte payloads for three
/// datasets and 80-byte payloads for YCSB.
template <size_t N>
struct Payload {
  char bytes[N] = {};
};

namespace detail {

/// Count of keys in [lo, hi] for indexes that only expose RangeScan:
/// materialize a chunk, reduce it, resume past the last key seen. This is
/// deliberately the straw-man execution strategy the pushed-down
/// aggregate is benchmarked against — every counted record is copied into
/// `buf` first.
template <typename Index, typename K, typename P>
size_t CountRangeByRescan(Index& index, K lo, K hi,
                          std::vector<std::pair<K, P>>* buf) {
  constexpr size_t kChunk = 1024;
  size_t total = 0;
  K resume = lo;
  bool skip_resume = false;
  while (true) {
    const size_t got = index.RangeScan(resume, kChunk, buf);
    if (got == 0) return total;
    for (const auto& [key, payload] : *buf) {
      (void)payload;
      if (skip_resume && !(resume < key)) continue;  // re-fetched resume key
      if (hi < key) return total;
      ++total;
    }
    if (got < kChunk) return total;  // index exhausted
    resume = buf->back().first;
    skip_resume = true;
  }
}

}  // namespace detail

/// Adapter over core::Alex.
template <typename K, typename P>
class AlexAdapter {
 public:
  using key_type = K;
  using payload_type = P;

  explicit AlexAdapter(const core::Config& config = core::Config())
      : index_(config) {}

  static const char* Name() { return "ALEX"; }

  void BulkLoad(const K* keys, const P* payloads, size_t n) {
    index_.BulkLoad(keys, payloads, n);
  }
  bool Insert(K key, const P& payload) { return index_.Insert(key, payload); }
  bool Find(K key) { return index_.Find(key) != nullptr; }
  bool Erase(K key) { return index_.Erase(key); }
  size_t RangeScan(K start, size_t max_results,
                   std::vector<std::pair<K, P>>* out) {
    return index_.RangeScan(start, max_results, out);
  }
  /// Keys in [lo, hi], via chunked materialize-then-reduce.
  size_t CountRange(K lo, K hi) {
    return detail::CountRangeByRescan(index_, lo, hi, &count_buffer_);
  }
  size_t IndexSizeBytes() const { return index_.IndexSizeBytes(); }
  size_t DataSizeBytes() const { return index_.DataSizeBytes(); }
  size_t size() const { return index_.size(); }

  core::Alex<K, P>& index() { return index_; }

 private:
  core::Alex<K, P> index_;
  std::vector<std::pair<K, P>> count_buffer_;
};

/// Adapter over baseline::BPlusTree.
template <typename K, typename P>
class BTreeAdapter {
 public:
  using key_type = K;
  using payload_type = P;

  explicit BTreeAdapter(size_t node_capacity = 64) : tree_(node_capacity) {}

  static const char* Name() { return "B+Tree"; }

  void BulkLoad(const K* keys, const P* payloads, size_t n) {
    tree_.BulkLoad(keys, payloads, n);
  }
  bool Insert(K key, const P& payload) { return tree_.Insert(key, payload); }
  bool Find(K key) { return tree_.Find(key) != nullptr; }
  bool Erase(K key) { return tree_.Erase(key); }
  size_t RangeScan(K start, size_t max_results,
                   std::vector<std::pair<K, P>>* out) {
    return tree_.RangeScan(start, max_results, out);
  }
  /// Keys in [lo, hi], via chunked materialize-then-reduce.
  size_t CountRange(K lo, K hi) {
    return detail::CountRangeByRescan(tree_, lo, hi, &count_buffer_);
  }
  size_t IndexSizeBytes() const { return tree_.IndexSizeBytes(); }
  size_t DataSizeBytes() const { return tree_.DataSizeBytes(); }
  size_t size() const { return tree_.size(); }

  baseline::BPlusTree<K, P>& index() { return tree_; }

 private:
  baseline::BPlusTree<K, P> tree_;
  std::vector<std::pair<K, P>> count_buffer_;
};

/// Adapter over baseline::LearnedIndex.
template <typename K, typename P>
class LearnedIndexAdapter {
 public:
  using key_type = K;
  using payload_type = P;

  explicit LearnedIndexAdapter(size_t num_models = 1024)
      : index_(num_models) {}

  static const char* Name() { return "Learned Index"; }

  void BulkLoad(const K* keys, const P* payloads, size_t n) {
    index_.BulkLoad(keys, payloads, n);
  }
  bool Insert(K key, const P& payload) { return index_.Insert(key, payload); }
  bool Find(K key) { return index_.Find(key) != nullptr; }
  bool Erase(K key) { return index_.Erase(key); }
  size_t RangeScan(K start, size_t max_results,
                   std::vector<std::pair<K, P>>* out) {
    return index_.RangeScan(start, max_results, out);
  }
  /// Keys in [lo, hi], via chunked materialize-then-reduce.
  size_t CountRange(K lo, K hi) {
    return detail::CountRangeByRescan(index_, lo, hi, &count_buffer_);
  }
  size_t IndexSizeBytes() const { return index_.IndexSizeBytes(); }
  size_t DataSizeBytes() const { return index_.DataSizeBytes(); }
  size_t size() const { return index_.size(); }

  baseline::LearnedIndex<K, P>& index() { return index_; }

 private:
  baseline::LearnedIndex<K, P> index_;
  std::vector<std::pair<K, P>> count_buffer_;
};

/// Adapter over shard::ShardedAlex — the sharded service layer. Unlike
/// the other adapters it is also safe to drive from many threads.
template <typename K, typename P>
class ShardedAlexAdapter {
 public:
  using key_type = K;
  using payload_type = P;

  explicit ShardedAlexAdapter(
      const shard::ShardedOptions& options = shard::ShardedOptions())
      : index_(options) {}

  static const char* Name() { return "Sharded ALEX"; }

  void BulkLoad(const K* keys, const P* payloads, size_t n) {
    index_.BulkLoad(keys, payloads, n);
  }
  bool Insert(K key, const P& payload) { return index_.Insert(key, payload); }
  bool Find(K key) { return index_.Contains(key); }
  bool Erase(K key) { return index_.Erase(key); }
  // Batched entry points (any key order; the shard layer sorts).
  size_t MultiGet(const K* keys, size_t n, P* payloads, bool* found) {
    return index_.MultiGet(keys, n, payloads, found);
  }
  size_t MultiInsert(const K* keys, const P* payloads, size_t n,
                     bool* inserted = nullptr) {
    return index_.MultiInsert(keys, payloads, n, inserted);
  }
  size_t MultiErase(const K* keys, size_t n, bool* erased = nullptr) {
    return index_.MultiErase(keys, n, erased);
  }
  size_t RangeScan(K start, size_t max_results,
                   std::vector<std::pair<K, P>>* out) {
    return index_.RangeScan(start, max_results, out);
  }
  /// Keys in [lo, hi], pushed down below the router: per-shard, per-leaf
  /// bitmap popcounts — nothing is materialized.
  size_t CountRange(K lo, K hi) {
    core::AggSpec<P> spec;
    spec.count_only = true;
    return static_cast<size_t>(index_.Aggregate(lo, hi, spec).count);
  }
  /// Streaming ordered scan (see ShardedAlex::Scan).
  template <typename Visitor>
  size_t Scan(K lo, K hi, Visitor&& visit) {
    return index_.Scan(lo, hi, std::forward<Visitor>(visit));
  }
  /// Pushed-down aggregate (see ShardedAlex::Aggregate).
  core::AggResult<K, P> Aggregate(K lo, K hi,
                                  const core::AggSpec<P>& spec = {}) {
    return index_.Aggregate(lo, hi, spec);
  }
  size_t IndexSizeBytes() const { return index_.IndexSizeBytes(); }
  size_t DataSizeBytes() const { return index_.DataSizeBytes(); }
  size_t size() const { return index_.size(); }

  shard::ShardedAlex<K, P>& index() { return index_; }

 private:
  shard::ShardedAlex<K, P> index_;
};

}  // namespace alex::workload
