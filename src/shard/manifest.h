// On-disk manifest for a sharded snapshot.
//
// A ShardedAlex snapshot is one core/serialization.h file per shard plus
// this manifest, which records the routing state needed to reassemble the
// index: the boundary array, the router model (so a load restores the
// bulk-load-quality model instead of a refit from boundaries), and the
// per-shard key counts (so a load can detect a shard file that was
// swapped or rebuilt independently of its manifest).
//
// Layout (format v4): ManifestHeader, boundaries (num_shards-1 keys),
// per-shard key counts (num_shards uint64s), per-shard WAL ids and
// checkpoint LSNs (num_shards uint64s each; all zero when the WAL is
// disabled), per-shard tier tags and cold-segment ids (num_shards
// uint64s each; tag 0 = resident with a .shard snapshot file, tag 1 =
// cold with a .seg-<id> segment file), the next cold-segment id to
// allocate (one uint64), then a trailing FNV-1a checksum over
// everything before it. A v3 manifest (no tier arrays) still loads:
// every shard is implicitly resident and segment allocation restarts
// from the directory scan.
// The WAL fields make the manifest the checkpoint record: shard i's
// snapshot file captures exactly the effects of its log's records up to
// checkpoint_lsns[i], so recovery replays only what came after —
// per shard: the boundary array plus the per-shard wal lineage anchors
// are what let LoadFrom rebuild each shard independently with the exact
// pre-crash boundaries (boundary-preserving recovery) instead of
// repartitioning a merged map. v3 also records the topology epoch (how
// many topology transactions — splits, merges, rebalances — the index
// has committed), so the counter survives restarts. Reading validates
// magic, version, key size, the declared lengths against the actual
// file size, and the checksum — each failure maps to a distinct
// core::SnapshotStatus.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "core/serialization.h"
#include "models/linear_model.h"

namespace alex::shard {

namespace internal {

// "ALEXSHRD" in ASCII.
inline constexpr uint64_t kManifestMagic = 0x414C455853485244ULL;
// Version 2 added the per-shard WAL ids and checkpoint LSNs; version 3
// added the topology epoch and the boundary-preserving-recovery
// contract (each shard file + wal lineage replays independently);
// version 4 added the per-shard tier tags + cold segment ids and the
// next-segment-id watermark. Readers accept v3 (all shards resident).
inline constexpr uint32_t kManifestVersion = 4;
inline constexpr uint32_t kOldestReadableManifestVersion = 3;

/// Tier tag values stored in ShardManifest::tier_tags.
inline constexpr uint64_t kTierResident = 0;
inline constexpr uint64_t kTierCold = 1;

// The checksum primitive is shared with the snapshot body checksum.
using core::internal::Fnv1a;
using core::internal::kFnvOffsetBasis;

}  // namespace internal

/// Fixed manifest header.
struct ManifestHeader {
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t key_size = 0;
  uint64_t num_shards = 0;
  uint64_t total_keys = 0;
  // Snapshot generation: shard files are stamped with it, so a save never
  // overwrites the files the live manifest references — the manifest
  // rename is the all-or-nothing commit point.
  uint64_t generation = 0;
  // Lower bound on the next WAL id a recovered index may allocate (the
  // directory scan can only raise it); 0 when the WAL is disabled.
  uint64_t next_wal_id = 0;
  // Topology transactions (splits, merges, rebalances) committed over
  // the index's lifetime; restored by LoadFrom so the epoch is monotone
  // across restarts.
  uint64_t topology_epoch = 0;
  double router_slope = 0.0;
  double router_intercept = 0.0;
};

/// In-memory manifest contents.
template <typename K>
struct ShardManifest {
  std::vector<K> boundaries;         ///< num_shards - 1 shard lower bounds
  std::vector<uint64_t> shard_keys;  ///< key count per shard
  /// Per-shard WAL id (0 = shard is not logging) and the LSN up to which
  /// that log's effects are captured by this snapshot. Either empty (WAL
  /// never enabled) or exactly num_shards long.
  std::vector<uint64_t> wal_ids;
  std::vector<uint64_t> checkpoint_lsns;
  /// Per-shard storage tier (internal::kTierResident / kTierCold) and,
  /// for cold shards, the id of the segment file holding its records.
  /// Either empty (every shard resident — the v3 reading) or exactly
  /// num_shards long.
  std::vector<uint64_t> tier_tags;
  std::vector<uint64_t> segment_ids;
  model::LinearModel router_model;
  uint64_t generation = 0;
  uint64_t next_wal_id = 0;
  uint64_t topology_epoch = 0;
  /// Lower bound on the next cold-segment id to allocate (the directory
  /// scan can only raise it).
  uint64_t next_segment_id = 0;

  size_t num_shards() const { return shard_keys.size(); }
  bool IsCold(size_t shard) const {
    return shard < tier_tags.size() &&
           tier_tags[shard] == internal::kTierCold;
  }
  uint64_t total_keys() const {
    uint64_t total = 0;
    for (const uint64_t n : shard_keys) total += n;
    return total;
  }
};

template <typename K>
core::SnapshotStatus WriteManifest(const std::string& path,
                                   const ShardManifest<K>& manifest) {
  static_assert(std::is_trivially_copyable_v<K>,
                "keys must be trivially copyable");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return core::SnapshotStatus::kIoError;
  ManifestHeader header;
  header.magic = internal::kManifestMagic;
  header.version = internal::kManifestVersion;
  header.key_size = sizeof(K);
  header.num_shards = manifest.num_shards();
  header.total_keys = manifest.total_keys();
  header.generation = manifest.generation;
  header.next_wal_id = manifest.next_wal_id;
  header.topology_epoch = manifest.topology_epoch;
  header.router_slope = manifest.router_model.slope();
  header.router_intercept = manifest.router_model.intercept();

  // The WAL arrays are optional in memory (an index that never enabled
  // the WAL leaves them empty) but fixed-size on disk: pad with zeros.
  std::vector<uint64_t> wal_ids = manifest.wal_ids;
  std::vector<uint64_t> checkpoint_lsns = manifest.checkpoint_lsns;
  wal_ids.resize(manifest.num_shards(), 0);
  checkpoint_lsns.resize(manifest.num_shards(), 0);
  // Likewise the tier arrays: empty in memory means all-resident.
  std::vector<uint64_t> tier_tags = manifest.tier_tags;
  std::vector<uint64_t> segment_ids = manifest.segment_ids;
  tier_tags.resize(manifest.num_shards(), internal::kTierResident);
  segment_ids.resize(manifest.num_shards(), 0);

  uint64_t checksum = internal::Fnv1a(&header, sizeof(header),
                                      internal::kFnvOffsetBasis);
  checksum = internal::Fnv1a(manifest.boundaries.data(),
                             manifest.boundaries.size() * sizeof(K),
                             checksum);
  checksum = internal::Fnv1a(manifest.shard_keys.data(),
                             manifest.shard_keys.size() * sizeof(uint64_t),
                             checksum);
  checksum = internal::Fnv1a(wal_ids.data(),
                             wal_ids.size() * sizeof(uint64_t), checksum);
  checksum = internal::Fnv1a(checkpoint_lsns.data(),
                             checkpoint_lsns.size() * sizeof(uint64_t),
                             checksum);
  checksum = internal::Fnv1a(tier_tags.data(),
                             tier_tags.size() * sizeof(uint64_t), checksum);
  checksum = internal::Fnv1a(segment_ids.data(),
                             segment_ids.size() * sizeof(uint64_t),
                             checksum);
  checksum = internal::Fnv1a(&manifest.next_segment_id, sizeof(uint64_t),
                             checksum);

  bool ok = std::fwrite(&header, sizeof(header), 1, f) == 1;
  if (ok && !manifest.boundaries.empty()) {
    ok = std::fwrite(manifest.boundaries.data(), sizeof(K),
                     manifest.boundaries.size(),
                     f) == manifest.boundaries.size();
  }
  if (ok && !manifest.shard_keys.empty()) {
    ok = std::fwrite(manifest.shard_keys.data(), sizeof(uint64_t),
                     manifest.shard_keys.size(),
                     f) == manifest.shard_keys.size();
  }
  if (ok && !wal_ids.empty()) {
    ok = std::fwrite(wal_ids.data(), sizeof(uint64_t), wal_ids.size(),
                     f) == wal_ids.size();
    ok = ok && std::fwrite(checkpoint_lsns.data(), sizeof(uint64_t),
                           checkpoint_lsns.size(),
                           f) == checkpoint_lsns.size();
  }
  if (ok && !tier_tags.empty()) {
    ok = std::fwrite(tier_tags.data(), sizeof(uint64_t), tier_tags.size(),
                     f) == tier_tags.size();
    ok = ok && std::fwrite(segment_ids.data(), sizeof(uint64_t),
                           segment_ids.size(), f) == segment_ids.size();
  }
  ok = ok && std::fwrite(&manifest.next_segment_id, sizeof(uint64_t), 1,
                         f) == 1;
  ok = ok && std::fwrite(&checksum, sizeof(checksum), 1, f) == 1;
  ok = std::fclose(f) == 0 && ok;
  return ok ? core::SnapshotStatus::kOk : core::SnapshotStatus::kIoError;
}

template <typename K>
core::SnapshotStatus ReadManifest(const std::string& path,
                                  ShardManifest<K>* out) {
  static_assert(std::is_trivially_copyable_v<K>,
                "keys must be trivially copyable");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return core::SnapshotStatus::kIoError;
  core::internal::FileCloser closer{f};
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return core::SnapshotStatus::kIoError;
  }
  const long end = std::ftell(f);
  if (end < 0) return core::SnapshotStatus::kIoError;
  if (std::fseek(f, 0, SEEK_SET) != 0) {
    return core::SnapshotStatus::kIoError;
  }
  const uint64_t file_size = static_cast<uint64_t>(end);

  ManifestHeader header;
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    return core::SnapshotStatus::kTruncated;
  }
  if (header.magic != internal::kManifestMagic) {
    return core::SnapshotStatus::kBadMagic;
  }
  if (header.version < internal::kOldestReadableManifestVersion ||
      header.version > internal::kManifestVersion) {
    return core::SnapshotStatus::kBadVersion;
  }
  const bool has_tiers = header.version >= 4;
  if (header.key_size != sizeof(K)) {
    return core::SnapshotStatus::kKeySizeMismatch;
  }
  if (header.num_shards == 0) return core::SnapshotStatus::kTruncated;
  // Validate the declared length against the file before allocating. The
  // division-based bound comes first so the exact byte count below cannot
  // overflow on a corrupt shard count.
  // v4 appends the next-segment-id watermark before the checksum.
  const uint64_t tail_bytes =
      sizeof(uint64_t) + (has_tiers ? sizeof(uint64_t) : 0);
  if (file_size < sizeof(header) + tail_bytes) {
    return core::SnapshotStatus::kTruncated;
  }
  const uint64_t body_budget = file_size - sizeof(header) - tail_bytes;
  // Per shard the body holds one boundary key (except the first shard)
  // plus per-shard uint64s: key count, wal id, checkpoint LSN, and in v4
  // the tier tag and segment id.
  const uint64_t words_per_shard = has_tiers ? 5 : 3;
  if (header.num_shards - 1 >
      body_budget / (sizeof(K) + words_per_shard * sizeof(uint64_t))) {
    return core::SnapshotStatus::kTruncated;
  }
  const uint64_t body_bytes =
      (header.num_shards - 1) * sizeof(K) +
      header.num_shards * words_per_shard * sizeof(uint64_t);
  if (body_budget < body_bytes) {
    return core::SnapshotStatus::kTruncated;
  }

  out->boundaries.resize(header.num_shards - 1);
  out->shard_keys.resize(header.num_shards);
  out->wal_ids.resize(header.num_shards);
  out->checkpoint_lsns.resize(header.num_shards);
  if (!out->boundaries.empty() &&
      std::fread(out->boundaries.data(), sizeof(K), out->boundaries.size(),
                 f) != out->boundaries.size()) {
    return core::SnapshotStatus::kTruncated;
  }
  if (std::fread(out->shard_keys.data(), sizeof(uint64_t),
                 out->shard_keys.size(), f) != out->shard_keys.size()) {
    return core::SnapshotStatus::kTruncated;
  }
  if (std::fread(out->wal_ids.data(), sizeof(uint64_t),
                 out->wal_ids.size(), f) != out->wal_ids.size()) {
    return core::SnapshotStatus::kTruncated;
  }
  if (std::fread(out->checkpoint_lsns.data(), sizeof(uint64_t),
                 out->checkpoint_lsns.size(),
                 f) != out->checkpoint_lsns.size()) {
    return core::SnapshotStatus::kTruncated;
  }
  uint64_t next_segment_id = 0;
  if (has_tiers) {
    out->tier_tags.resize(header.num_shards);
    out->segment_ids.resize(header.num_shards);
    if (std::fread(out->tier_tags.data(), sizeof(uint64_t),
                   out->tier_tags.size(), f) != out->tier_tags.size()) {
      return core::SnapshotStatus::kTruncated;
    }
    if (std::fread(out->segment_ids.data(), sizeof(uint64_t),
                   out->segment_ids.size(),
                   f) != out->segment_ids.size()) {
      return core::SnapshotStatus::kTruncated;
    }
    if (std::fread(&next_segment_id, sizeof(next_segment_id), 1, f) != 1) {
      return core::SnapshotStatus::kTruncated;
    }
  } else {
    // v3: every shard is implicitly resident.
    out->tier_tags.assign(header.num_shards, internal::kTierResident);
    out->segment_ids.assign(header.num_shards, 0);
  }
  uint64_t stored_checksum = 0;
  if (std::fread(&stored_checksum, sizeof(stored_checksum), 1, f) != 1) {
    return core::SnapshotStatus::kTruncated;
  }
  uint64_t checksum = internal::Fnv1a(&header, sizeof(header),
                                      internal::kFnvOffsetBasis);
  checksum = internal::Fnv1a(out->boundaries.data(),
                             out->boundaries.size() * sizeof(K), checksum);
  checksum = internal::Fnv1a(out->shard_keys.data(),
                             out->shard_keys.size() * sizeof(uint64_t),
                             checksum);
  checksum = internal::Fnv1a(out->wal_ids.data(),
                             out->wal_ids.size() * sizeof(uint64_t),
                             checksum);
  checksum = internal::Fnv1a(out->checkpoint_lsns.data(),
                             out->checkpoint_lsns.size() * sizeof(uint64_t),
                             checksum);
  if (has_tiers) {
    checksum = internal::Fnv1a(out->tier_tags.data(),
                               out->tier_tags.size() * sizeof(uint64_t),
                               checksum);
    checksum = internal::Fnv1a(out->segment_ids.data(),
                               out->segment_ids.size() * sizeof(uint64_t),
                               checksum);
    checksum =
        internal::Fnv1a(&next_segment_id, sizeof(uint64_t), checksum);
  }
  if (checksum != stored_checksum) {
    return core::SnapshotStatus::kChecksumMismatch;
  }
  if (header.total_keys != out->total_keys()) {
    return core::SnapshotStatus::kChecksumMismatch;
  }
  // Strictly increasing boundaries are the router's precondition (its
  // binary-search fallback runs over this array); a checksummed-but-
  // malformed manifest from a foreign writer must not misroute.
  for (size_t i = 1; i < out->boundaries.size(); ++i) {
    if (!(out->boundaries[i - 1] < out->boundaries[i])) {
      return core::SnapshotStatus::kUnsortedKeys;
    }
  }
  for (size_t i = 0; i < out->tier_tags.size(); ++i) {
    if (out->tier_tags[i] != internal::kTierResident &&
        out->tier_tags[i] != internal::kTierCold) {
      return core::SnapshotStatus::kManifestMismatch;
    }
  }
  out->generation = header.generation;
  out->next_wal_id = header.next_wal_id;
  out->topology_epoch = header.topology_epoch;
  out->next_segment_id = next_segment_id;
  out->router_model =
      model::LinearModel(header.router_slope, header.router_intercept);
  return core::SnapshotStatus::kOk;
}

}  // namespace alex::shard
