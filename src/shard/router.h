// Learned shard router for the sharded service layer.
//
// The key space is range-partitioned: shard i owns [boundaries[i-1],
// boundaries[i]) with open ends at both extremes. Routing a key costs one
// linear-model evaluation (the same two-double model family the index
// itself uses, models/linear_model.h) verified against the boundary array;
// when the model's guess is wrong — skewed distributions, or a router
// refit from boundaries alone after a rebalance — the router falls back to
// a binary search over the boundaries. Routing is therefore always exact;
// the model only buys the common case O(1) instead of O(log #shards).
//
// Routers are immutable once built and shared read-only across threads; a
// rebalance builds a new router for its replacement table rather than
// mutating the live one.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "models/linear_model.h"
#include "obs/metrics.h"

namespace alex::shard {

template <typename K>
class ShardRouter {
 public:
  /// A default router has a single shard: everything routes to 0.
  ShardRouter() = default;

  /// Wraps an existing boundary array and model (used when loading a
  /// manifest, which persists both).
  ShardRouter(std::vector<K> boundaries, model::LinearModel model)
      : boundaries_(std::move(boundaries)), model_(model) {}

  /// Builds a router partitioning `n` strictly-increasing keys into
  /// `num_shards` contiguous ranges of ~n/num_shards keys each;
  /// boundaries[i] = keys[(i+1)*n/num_shards], the first key owned by
  /// shard i+1. The model is a CDF fit over at most `sample_cap` evenly
  /// sampled keys, rescaled to predict shard indexes directly. Requires
  /// n >= num_shards (callers clamp).
  static ShardRouter FitFromSortedKeys(const K* keys, size_t n,
                                       size_t num_shards,
                                       size_t sample_cap = 4096) {
    ShardRouter router;
    if (num_shards <= 1 || n == 0) return router;
    router.boundaries_.reserve(num_shards - 1);
    for (size_t i = 1; i < num_shards; ++i) {
      router.boundaries_.push_back(keys[i * n / num_shards]);
    }
    const size_t stride = std::max<size_t>(1, n / sample_cap);
    std::vector<K> sample;
    sample.reserve(n / stride + 1);
    for (size_t i = 0; i < n; i += stride) sample.push_back(keys[i]);
    router.model_ =
        model::TrainCdfModel(sample.data(), sample.size(), num_shards);
    ALEX_OBS_COUNTER_INC("shard.router_refits");
    return router;
  }

  /// Boundary surgery for a topology transaction: victims [lo, hi) of
  /// the table this array describes are replaced by children whose
  /// internal split keys are `split_keys` (so the child count is
  /// split_keys.size() + 1). The victims' outer edges survive — the
  /// transaction never moves a boundary it did not drain — and only
  /// their internal boundaries are swapped out: a merge passes no split
  /// keys, a split passes its fresh ones, a rebalance passes re-evened
  /// ones. Requires lo < hi <= num_shards and strictly increasing split
  /// keys inside the victims' range.
  static std::vector<K> SpliceBoundaries(const std::vector<K>& boundaries,
                                         size_t lo, size_t hi,
                                         const std::vector<K>& split_keys) {
    // boundaries[i] is the lower bound of shard i+1: indices < lo lie at
    // or below the victims' lower edge, indices [lo, hi-1) are the
    // victims' internal boundaries, index hi-1 onward start at the upper
    // edge.
    std::vector<K> out;
    out.reserve(boundaries.size() - (hi - 1 - lo) + split_keys.size());
    out.insert(out.end(), boundaries.begin(),
               boundaries.begin() + static_cast<std::ptrdiff_t>(lo));
    out.insert(out.end(), split_keys.begin(), split_keys.end());
    out.insert(out.end(),
               boundaries.begin() + static_cast<std::ptrdiff_t>(hi - 1),
               boundaries.end());
    return out;
  }

  /// Builds a router from a boundary array alone (the topology-change
  /// path, where no global sorted key array exists). The model is fit on
  /// the boundary keys themselves — a coarse CDF, but the binary-search
  /// fallback keeps routing exact regardless of its quality.
  static ShardRouter FitFromBoundaries(std::vector<K> boundaries) {
    model::LinearModelBuilder builder;
    for (size_t i = 0; i < boundaries.size(); ++i) {
      builder.Add(static_cast<double>(boundaries[i]),
                  static_cast<double>(i + 1));
    }
    ALEX_OBS_COUNTER_INC("shard.router_refits");
    return ShardRouter(std::move(boundaries), builder.Build());
  }

  size_t num_shards() const { return boundaries_.size() + 1; }
  const std::vector<K>& boundaries() const { return boundaries_; }
  const model::LinearModel& model() const { return model_; }

  /// Shard owning `key`: one model evaluation, verified against the
  /// owning range; binary search over the boundaries when the model
  /// misses.
  size_t Route(K key) const {
    if (boundaries_.empty()) return 0;
    const size_t shards = boundaries_.size() + 1;
    const size_t s = model_.Predict(static_cast<double>(key), shards);
    if ((s == 0 || !(key < boundaries_[s - 1])) &&
        (s + 1 == shards || key < boundaries_[s])) {
      ALEX_OBS_COUNTER_INC("shard.router_model_hits");
      return s;
    }
    ALEX_OBS_COUNTER_INC("shard.router_fallbacks");
    return static_cast<size_t>(
        std::upper_bound(boundaries_.begin(), boundaries_.end(), key) -
        boundaries_.begin());
  }

  /// Smallest key owned by shard `s` (s >= 1; shard 0's range is open
  /// below).
  K LowerBoundOf(size_t s) const { return boundaries_[s - 1]; }

  /// Router footprint: the model plus the boundary array (reported under
  /// index size, like inner-node models).
  size_t SizeBytes() const {
    return model::LinearModel::SizeBytes() + boundaries_.size() * sizeof(K);
  }

 private:
  std::vector<K> boundaries_;
  model::LinearModel model_;
};

}  // namespace alex::shard
