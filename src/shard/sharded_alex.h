// Sharded index service layer: N independent ConcurrentAlex shards behind
// a learned router (ROADMAP "production scale"; the step past the paper's
// single in-process tree that §7 gestures at).
//
// Why: even with the lock-free read path, one ConcurrentAlex has
// tree-global choke points — bulk loads swap a single root, every split
// retires through one epoch manager, and a hot leaf's latch serializes all
// writers of that range. Range-partitioning the key space makes those
// costs per-shard: bulk loads, splits, epoch advancement and leaf latches
// in different shards never interact, so the index scales with cores and
// a crashed process can restore shard-by-shard.
//
// Architecture:
//
//      ShardedAlex
//        table_  ──► Table { ShardRouter, shards[] }     (immutable)
//                          │
//          ┌───────────────┼──────────────────┐
//          ▼               ▼                  ▼
//       Shard 0         Shard 1    ...     Shard N-1
//     ConcurrentAlex  ConcurrentAlex     ConcurrentAlex
//     (-inf, b0)      [b0, b1)           [b_{N-2}, +inf)
//
// Protocol (mirrors the index's own EBR design one level up):
//
//   Routing.   `table_` points at an immutable Table: a ShardRouter (one
//     linear-model evaluation, binary-search fallback — router.h) plus the
//     shard array. Readers pin an epoch guard (util/epoch.h), load the
//     table with one seq_cst load, route, and operate on the shard with no
//     shard-layer locking of any kind.
//
//   Writes.   Writers additionally hold the target shard's `write_gate`
//     shared for the duration of one committed operation and re-route if
//     the shard is marked retired. The gate is what lets a rebalance drain
//     a shard: writers of *other* shards never contend on it, and readers
//     never touch it. There is no global key counter: size() sums the
//     per-shard counts, so writes to disjoint shards share no cache line
//     at the shard layer, and the split skew check (which must read every
//     shard's size) is amortized to every 1024th key committed into a
//     shard.
//
//   Rebalance.   When a shard's size exceeds the configured skew factor
//     times the mean (or an absolute bound), a rebalancer takes the
//     shard's gate exclusive — waiting out in-flight writers and excluding
//     new ones — extracts the now write-quiescent shard, builds the
//     replacement shards and a new Table off to the side, publishes the
//     table with one store, marks the victim retired (stragglers re-route)
//     and retires the old Table through EBR. Readers concurrently inside
//     the victim keep reading it: its contents are never erased, and the
//     Table (and with it the victim shard) is freed only two epoch
//     advances after retirement.
//
//   Scans.   A cross-shard RangeScan pins one table and stitches
//     per-shard scans in key order; shards are disjoint ascending ranges,
//     so concatenation is already sorted. Same read-committed contract as
//     ConcurrentAlex::RangeScan.
//
//   Durability.   SaveTo quiesces writers (all gates, in shard order),
//     writes one serialization.h snapshot per shard plus a checksummed
//     manifest (manifest.h) holding the boundaries, router model and
//     per-shard key counts. LoadFrom rebuilds the whole table off to the
//     side and publishes it only when every shard file validated, mapping
//     each failure to a distinct core::SnapshotStatus.
//
//   Write-ahead logging.   EnableWal attaches one src/wal/ log per shard
//     and anchors it with a checkpoint. From then on every write is
//     log-before-apply under the same shared gate that already covers the
//     apply, so a checkpoint's exclusive gates see log and index in
//     lockstep. SaveTo doubles as the checkpoint: it records each log's
//     LSN in the manifest, rotates the segments, and deletes everything
//     the snapshot made redundant. LoadFrom doubles as recovery: snapshot
//     first, then the per-shard log tails replayed in wal-id order
//     (parent-before-child across shard splits — wal/wal_format.h), with
//     a torn final record truncated and every other corruption surfaced
//     as a distinct wal::WalStatus in the RecoveryReport. A shard split
//     seals the victim's log at the publish LSN (under the same
//     exclusive gate that drained its writers) and opens fresh segments
//     for the replacements. Recovery linearizes concurrent same-key
//     writes in log order, which for operations that overlapped in real
//     time may differ from apply order — either is a valid linearization
//     of the acknowledged history.
//
// Lock order: rebalance_mutex_ → write_gate(s) in ascending shard order.
// Point writes take exactly one gate shared and no mutex; reads take
// nothing. One epoch guard per operation: the shards share this layer's
// reclamation domain (the guard ConcurrentAlex pins internally is a
// reentrant no-op on ours).
#pragma once

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/concurrent_alex.h"
#include "core/config.h"
#include "core/serialization.h"
#include "shard/manifest.h"
#include "shard/router.h"
#include "util/epoch.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"
#include "wal/wal_format.h"

namespace alex::shard {

/// Tuning for ShardedAlex.
struct ShardedOptions {
  /// Shard count targeted by BulkLoad/LoadFrom (rebalances may grow it).
  size_t num_shards = 8;
  /// Split a shard once its size exceeds `rebalance_skew` times the mean
  /// shard size.
  double rebalance_skew = 4.0;
  /// Never split a shard smaller than this (keeps pathological churn away
  /// from tiny indexes).
  size_t min_rebalance_keys = 4096;
  /// Absolute per-shard size bound (0 = none). Lets a single-shard or
  /// uniformly growing table split even when no relative skew exists.
  size_t max_shard_keys = 1u << 20;
  /// How many shards one rebalance splits the victim into.
  size_t split_ways = 2;
  /// Maximum keys sampled for the bulk-load router model.
  size_t router_sample_cap = 4096;
  /// Configuration applied to every shard's ConcurrentAlex.
  core::Config shard_config;
};

/// A range-partitioned, learned-routed collection of ConcurrentAlex
/// shards. All methods are safe to call from any thread. Point operations
/// are linearizable; scans are read-committed (see the protocol above).
template <typename K, typename P>
class ShardedAlex {
 public:
  explicit ShardedAlex(const ShardedOptions& options = ShardedOptions())
      : options_(options) {
    auto* table = new Table();
    table->shards.push_back(
        std::make_shared<Shard>(options_.shard_config, &epoch_));
    table_.store(table, std::memory_order_seq_cst);
  }

  /// Retired tables drain through the epoch manager's destructor. Callers
  /// must guarantee quiescence, as for any destructor.
  ~ShardedAlex() { delete table_.load(std::memory_order_relaxed); }

  ShardedAlex(const ShardedAlex&) = delete;
  ShardedAlex& operator=(const ShardedAlex&) = delete;

  /// Replaces the contents with `n` strictly-increasing keys, partitioned
  /// evenly across (at most) options.num_shards shards. Concurrent
  /// operations that landed in the old table linearize before the bulk
  /// load; in-flight writers are drained shard by shard. While the WAL is
  /// enabled the load seals the old shards' logs, opens fresh ones, and
  /// re-checkpoints automatically (the bulk-loaded contents exist in no
  /// log, so only a snapshot can anchor them); a checkpoint failure
  /// disables logging — nothing could truthfully be called durable
  /// without the anchor — and records kCheckpointFailed in
  /// last_wal_error().
  void BulkLoad(const K* keys, const P* payloads, size_t n) {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    const size_t shards =
        std::max<size_t>(1, std::min(options_.num_shards,
                                     std::max<size_t>(n, 1)));
    auto* next = new Table();
    next->router = ShardRouter<K>::FitFromSortedKeys(
        keys, n, shards, options_.router_sample_cap);
    next->shards.reserve(shards);
    for (size_t j = 0; j < shards; ++j) {
      const size_t lo = j * n / shards;
      const size_t hi = (j + 1) * n / shards;
      auto shard = std::make_shared<Shard>(options_.shard_config, &epoch_);
      shard->index.BulkLoad(keys + lo, payloads + lo, hi - lo);
      next->shards.push_back(std::move(shard));
    }
    if (wal_enabled_ && !AttachFreshLogs(&next->shards, /*parent=*/0)) {
      // Could not open log files: surface the error and stop logging
      // rather than silently running some shards unlogged.
      wal_enabled_ = false;
      last_wal_error_.store(wal::WalStatus::kIoError,
                            std::memory_order_relaxed);
    }
    Table* old = table_.exchange(next, std::memory_order_seq_cst);
    util::EpochManager::Guard guard(epoch_);
    // Drain in-flight writers of every old shard and mark it retired so
    // stragglers re-route into the new table; once every gate has cycled,
    // no further commit can land in the old table. The sealed logs keep
    // the old lineage replayable until the checkpoint below supersedes
    // it.
    for (const auto& shard : old->shards) {
      std::unique_lock<std::shared_mutex> gate(shard->write_gate);
      shard->retired.store(true, std::memory_order_seq_cst);
      if (shard->log != nullptr) shard->log->Seal();
    }
    epoch_.Retire(old);
    epoch_.TryReclaim();
    if (wal_enabled_ &&
        SaveToLocked(wal_prefix_) != core::SnapshotStatus::kOk) {
      // The bulk-loaded baseline now exists in no snapshot and no log;
      // continuing to log would let a recovery silently roll the index
      // back to the pre-load state while claiming the post-load writes
      // were durable. Fail closed: stop logging and surface the error.
      DetachLogs(table_.load(std::memory_order_seq_cst));
      wal_enabled_ = false;
      last_wal_error_.store(wal::WalStatus::kCheckpointFailed,
                            std::memory_order_relaxed);
    }
  }

  /// Inserts; false on duplicate. One route + one shard-gate shared lock
  /// on top of the shard's own insert path. When the commit leaves the
  /// target shard oversized, the split runs synchronously on this thread
  /// before returning (the relative skew check itself is amortized — see
  /// MaybeSplit).
  bool Insert(K key, const P& payload) {
    util::EpochManager::Guard guard(epoch_);
    while (true) {
      Table* table = table_.load(std::memory_order_seq_cst);
      const size_t idx = table->router.Route(key);
      Shard* shard = table->shards[idx].get();
      std::shared_lock<std::shared_mutex> gate(shard->write_gate);
      if (shard->retired.load(std::memory_order_seq_cst)) {
        continue;  // raced a rebalance/bulk load: re-route
      }
      // Log-before-apply: the record replays as insert-if-absent, so a
      // duplicate that fails below is a no-op on replay too.
      if (!LogWrite(shard, wal::WalRecordType::kInsert, key, &payload)) {
        return false;
      }
      const bool inserted = shard->index.Insert(key, payload);
      gate.unlock();
      if (!inserted) return false;
      // The shard-local commit counter makes the amortized skew check
      // deterministic: exactly one committing thread observes each
      // kSkewCheckInterval-th commit, however commits interleave.
      const uint64_t commit =
          shard->commit_count.fetch_add(1, std::memory_order_relaxed) + 1;
      MaybeSplit(table, shard, key, commit);
      return true;
    }
  }

  /// Removes `key`; false when absent.
  bool Erase(K key) {
    util::EpochManager::Guard guard(epoch_);
    while (true) {
      Table* table = table_.load(std::memory_order_seq_cst);
      Shard* shard = table->shards[table->router.Route(key)].get();
      std::shared_lock<std::shared_mutex> gate(shard->write_gate);
      if (shard->retired.load(std::memory_order_seq_cst)) continue;
      if (!LogWrite(shard, wal::WalRecordType::kErase, key, nullptr)) {
        return false;
      }
      return shard->index.Erase(key);
    }
  }

  /// Overwrites an existing payload; false when absent.
  bool Update(K key, const P& payload) {
    util::EpochManager::Guard guard(epoch_);
    while (true) {
      Table* table = table_.load(std::memory_order_seq_cst);
      Shard* shard = table->shards[table->router.Route(key)].get();
      std::shared_lock<std::shared_mutex> gate(shard->write_gate);
      if (shard->retired.load(std::memory_order_seq_cst)) continue;
      if (!LogWrite(shard, wal::WalRecordType::kUpdate, key, &payload)) {
        return false;
      }
      return shard->index.Update(key, payload);
    }
  }

  /// Copies the payload of `key` into `*out`; returns false when absent.
  /// No shard-layer locking: epoch guard + table load + route only.
  bool Get(K key, P* out) const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    return table->shards[table->router.Route(key)]->index.Get(key, out);
  }

  /// True when `key` is present (same lock-free path as Get).
  bool Contains(K key) const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    return table->shards[table->router.Route(key)]->index.Contains(key);
  }

  /// Cross-shard range scan: stitches per-shard scans in key order (the
  /// shards are disjoint ascending ranges, so the concatenation is
  /// sorted). Read-committed, like ConcurrentAlex::RangeScan; the whole
  /// scan uses the table pinned at entry, so a concurrent rebalance never
  /// tears it.
  size_t RangeScan(K start, size_t max_results,
                   std::vector<std::pair<K, P>>* out) const {
    out->clear();
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    size_t idx = table->router.Route(start);
    K resume = start;
    std::vector<std::pair<K, P>> chunk;
    while (out->size() < max_results && idx < table->shards.size()) {
      table->shards[idx]->index.RangeScan(
          resume, max_results - out->size(), &chunk);
      out->insert(out->end(), chunk.begin(), chunk.end());
      ++idx;
      if (idx < table->shards.size()) {
        resume = table->router.LowerBoundOf(idx);
      }
    }
    return out->size();
  }

  /// Total key count: the sum of per-shard counts, point-in-time per
  /// shard. There is deliberately no global counter for writers to
  /// contend on.
  size_t size() const {
    util::EpochManager::Guard guard(epoch_);
    return TotalKeys(table_.load(std::memory_order_seq_cst));
  }

  size_t num_shards() const {
    util::EpochManager::Guard guard(epoch_);
    return table_.load(std::memory_order_seq_cst)->shards.size();
  }

  /// Completed shard splits (diagnostics/tests).
  uint64_t rebalance_count() const {
    return rebalances_.load(std::memory_order_relaxed);
  }

  /// Current shard lower bounds (diagnostics/tests).
  std::vector<K> ShardBoundaries() const {
    util::EpochManager::Guard guard(epoch_);
    return table_.load(std::memory_order_seq_cst)->router.boundaries();
  }

  /// Shard index `key` routes to (diagnostics/tests).
  size_t ShardOf(K key) const {
    util::EpochManager::Guard guard(epoch_);
    return table_.load(std::memory_order_seq_cst)->router.Route(key);
  }

  /// Whole-table accounting; call only while no writers are in flight
  /// (bench/reporting hook), like the per-shard equivalents.
  size_t IndexSizeBytes() const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    size_t total = table->router.SizeBytes();
    for (const auto& shard : table->shards) {
      total += shard->index.IndexSizeBytes();
    }
    return total;
  }

  size_t DataSizeBytes() const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    size_t total = 0;
    for (const auto& shard : table->shards) {
      total += shard->index.DataSizeBytes();
    }
    return total;
  }

  // ---- Durability ----

  /// Path of the manifest / per-shard snapshot files for `prefix`. Shard
  /// files are stamped with the manifest's generation so a save never
  /// touches the files the committed manifest references.
  static std::string ManifestPath(const std::string& prefix) {
    return prefix + ".manifest";
  }
  static std::string ShardPath(const std::string& prefix,
                               uint64_t generation, size_t shard) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ".g%llu.shard-%04zu",
                  static_cast<unsigned long long>(generation), shard);
    return prefix + buf;
  }

  /// Writes one snapshot file per shard plus the manifest. Quiesces
  /// writers for the duration (all gates, ascending shard order), so the
  /// snapshot is a fully consistent point-in-time image; readers are
  /// never blocked. The save is all-or-nothing with respect to a
  /// previous snapshot at the same prefix: shard files are written under
  /// a fresh generation stamp, the manifest is committed with an atomic
  /// rename, and only then is the previous generation's data removed —
  /// a failure at any step leaves the old snapshot loadable.
  ///
  /// With the WAL enabled (and `prefix` equal to the WAL prefix) this is
  /// the *checkpoint*: the manifest records each shard log's LSN, the
  /// logs rotate onto fresh segments, and every segment the snapshot
  /// made redundant is deleted. Saving to a different prefix is a plain
  /// export and leaves the logs alone.
  core::SnapshotStatus SaveTo(const std::string& prefix) const {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    return SaveToLocked(prefix);
  }

  /// Replaces the contents from a SaveTo image — and, when WAL segments
  /// exist at the prefix, *recovers*: the snapshot is loaded first, then
  /// each log's tail (records past its checkpoint LSN) is replayed in
  /// wal-id order. The replacement table is built entirely off to the
  /// side and published only when the manifest, every shard file, and
  /// every log segment validated; on any non-kOk status the live index
  /// is untouched. A shard file the manifest references but the
  /// filesystem lacks yields kMissingShard; a shard file whose key count
  /// disagrees with the manifest, or whose keys fall outside the shard's
  /// boundary range (a swapped or foreign file), yields
  /// kManifestMismatch; an unreplayable log yields kWalReplayFailed with
  /// the distinct wal::WalStatus (and, on success, replay counts) in
  /// `*report`. A torn final record is tolerated: replay truncates it
  /// away and loses at most that one unacknowledged write.
  ///
  /// Recovery does not resume logging: call EnableWal afterwards, whose
  /// anchor checkpoint also retires the replayed segments.
  core::SnapshotStatus LoadFrom(const std::string& prefix,
                                wal::RecoveryReport* report = nullptr) {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    if (report != nullptr) *report = wal::RecoveryReport{};
    // While this index is itself logging, quiesce its writers for the
    // whole load: replay must never read (let alone truncate as "torn")
    // a batch a live group commit is still appending. Holding the gates
    // — rather than sealing the logs up front — means a load that
    // *fails* validation leaves the live index logging exactly as
    // before; only a successful load ends the old lineage.
    const bool was_logging = wal_enabled_;
    std::vector<std::unique_lock<std::shared_mutex>> quiesce;
    if (was_logging) {
      Table* live = table_.load(std::memory_order_seq_cst);
      quiesce.reserve(live->shards.size());
      for (const auto& shard : live->shards) {
        quiesce.emplace_back(shard->write_gate);
      }
    }
    ShardManifest<K> manifest;
    bool have_manifest = false;
    {
      // Distinguish "no snapshot was ever committed" (recovery can still
      // proceed from the logs alone) from an unreadable/corrupt one.
      std::FILE* probe = std::fopen(ManifestPath(prefix).c_str(), "rb");
      if (probe != nullptr) {
        std::fclose(probe);
        const core::SnapshotStatus status =
            ReadManifest<K>(ManifestPath(prefix), &manifest);
        if (status != core::SnapshotStatus::kOk) return status;
        have_manifest = true;
      }
    }
    const std::vector<wal::WalSegmentFile> segments =
        wal::ListWalSegments(prefix);
    if (!have_manifest && segments.empty()) {
      return core::SnapshotStatus::kIoError;  // nothing at this prefix
    }

    // Load and validate every snapshot shard file.
    std::vector<std::vector<K>> shard_keys(manifest.num_shards());
    std::vector<std::vector<P>> shard_payloads(manifest.num_shards());
    for (size_t i = 0; i < manifest.num_shards(); ++i) {
      std::vector<K>& keys = shard_keys[i];
      std::vector<P>& payloads = shard_payloads[i];
      const std::string shard_path =
          ShardPath(prefix, manifest.generation, i);
      core::SnapshotStatus status =
          core::ReadSnapshotFile<K, P>(shard_path, &keys, &payloads);
      if (status == core::SnapshotStatus::kIoError) {
        // Only a file that is actually gone is "missing"; a file that
        // exists but cannot be opened or read (permissions, disk) stays
        // kIoError — keep the statuses honest.
        std::FILE* probe = std::fopen(shard_path.c_str(), "rb");
        if (probe != nullptr) {
          std::fclose(probe);
          return core::SnapshotStatus::kIoError;
        }
        return errno == ENOENT ? core::SnapshotStatus::kMissingShard
                               : core::SnapshotStatus::kIoError;
      }
      if (status != core::SnapshotStatus::kOk) return status;
      if (keys.size() != manifest.shard_keys[i]) {
        return core::SnapshotStatus::kManifestMismatch;
      }
      // Snapshots are sorted, so first/last bound the whole file: every
      // key must lie inside [boundaries[i-1], boundaries[i]). Catches
      // shard files that were swapped or replaced on disk even when the
      // key counts happen to agree.
      if (!keys.empty()) {
        if (i > 0 && keys.front() < manifest.boundaries[i - 1]) {
          return core::SnapshotStatus::kManifestMismatch;
        }
        if (i + 1 < manifest.num_shards() &&
            !(keys.back() < manifest.boundaries[i])) {
          return core::SnapshotStatus::kManifestMismatch;
        }
      }
    }

    std::unique_ptr<Table> next;
    uint64_t floor_wal_id = manifest.next_wal_id;
    if (segments.empty()) {
      // Pure snapshot load: rebuild the saved table exactly (same
      // shards, boundaries, and router model).
      next = std::make_unique<Table>();
      next->router = ShardRouter<K>(manifest.boundaries,
                                    manifest.router_model);
      next->shards.reserve(manifest.num_shards());
      for (size_t i = 0; i < manifest.num_shards(); ++i) {
        auto shard =
            std::make_shared<Shard>(options_.shard_config, &epoch_);
        shard->index.BulkLoad(shard_keys[i].data(),
                              shard_payloads[i].data(),
                              shard_keys[i].size());
        next->shards.push_back(std::move(shard));
      }
    } else {
      // Recovery: merge the snapshot into one logical map, replay the
      // log tails over it, and repartition. Ascending wal-id order is
      // parent-before-child across shard splits, the only cross-log
      // ordering replay needs (lineages own disjoint key ranges).
      std::map<K, P> state;
      for (size_t i = 0; i < manifest.num_shards(); ++i) {
        for (size_t j = 0; j < shard_keys[i].size(); ++j) {
          // Shards and their keys arrive in ascending order, so end()
          // is always the right hint: O(1) amortized per key.
          state.emplace_hint(state.end(), shard_keys[i][j],
                             shard_payloads[i][j]);
        }
      }
      std::map<uint64_t, uint64_t> checkpoints;
      for (size_t i = 0; i < manifest.wal_ids.size(); ++i) {
        if (manifest.wal_ids[i] != 0) {
          checkpoints[manifest.wal_ids[i]] = manifest.checkpoint_lsns[i];
        }
      }
      wal::RecoveryReport local_report;
      wal::RecoveryReport* rep =
          report != nullptr ? report : &local_report;
      // Never physically truncate while the segments might belong to
      // this index's own live logs (their writers hold fd offsets past
      // the truncation point); with a manifest, unknown-root lineages
      // must not replay (see ReplayWal).
      const wal::WalStatus wal_status = wal::ReplayWal<K, P>(
          prefix, checkpoints, &state, rep,
          /*truncate_torn_tail=*/!was_logging,
          /*require_known_roots=*/have_manifest);
      if (wal_status != wal::WalStatus::kOk) {
        return core::SnapshotStatus::kWalReplayFailed;
      }
      floor_wal_id = std::max(floor_wal_id, rep->max_wal_id + 1);

      std::vector<K> keys;
      std::vector<P> payloads;
      keys.reserve(state.size());
      payloads.reserve(state.size());
      for (const auto& [key, payload] : state) {
        keys.push_back(key);
        payloads.push_back(payload);
      }
      const size_t target =
          have_manifest ? manifest.num_shards() : options_.num_shards;
      const size_t shards = std::max<size_t>(
          1, std::min(target, std::max<size_t>(keys.size(), 1)));
      next = std::make_unique<Table>();
      next->router = ShardRouter<K>::FitFromSortedKeys(
          keys.data(), keys.size(), shards, options_.router_sample_cap);
      next->shards.reserve(shards);
      for (size_t j = 0; j < shards; ++j) {
        const size_t lo = j * keys.size() / shards;
        const size_t hi = (j + 1) * keys.size() / shards;
        auto shard =
            std::make_shared<Shard>(options_.shard_config, &epoch_);
        shard->index.BulkLoad(keys.data() + lo, payloads.data() + lo,
                              hi - lo);
        next->shards.push_back(std::move(shard));
      }
    }

    if (floor_wal_id > next_wal_id_) next_wal_id_ = floor_wal_id;
    // The recovered table starts unlogged (see the method comment); any
    // logs of the replaced table belong to an abandoned lineage, get
    // sealed below, and are swept by the next checkpoint. The quiesce
    // gates must drop before the retire loop re-takes them.
    wal_enabled_ = false;
    quiesce.clear();
    Table* old = table_.exchange(next.release(),
                                 std::memory_order_seq_cst);
    util::EpochManager::Guard guard(epoch_);
    for (const auto& shard : old->shards) {
      std::unique_lock<std::shared_mutex> gate(shard->write_gate);
      shard->retired.store(true, std::memory_order_seq_cst);
      if (shard->log != nullptr) shard->log->Seal();
    }
    epoch_.Retire(old);
    epoch_.TryReclaim();
    return core::SnapshotStatus::kOk;
  }

  // ---- Write-ahead logging ----

  /// Starts logging every write to per-shard logs at `prefix` and
  /// anchors them with an initial checkpoint (so recovery always has a
  /// snapshot to replay onto). Typical lifecycles:
  ///
  ///   fresh:    ShardedAlex idx; idx.BulkLoad(...); idx.EnableWal(p);
  ///   restart:  ShardedAlex idx; idx.LoadFrom(p);   idx.EnableWal(p);
  ///
  /// The anchor checkpoint also sweeps any segments a previous
  /// incarnation left at the prefix, so enable-after-recover retires the
  /// very logs that were just replayed. Fails with kAlreadyEnabled when
  /// logging is already on, kIoError when a log file cannot be opened,
  /// and kCheckpointFailed when the anchor snapshot cannot commit (in
  /// which case logging stays off and the index is unchanged).
  wal::WalStatus EnableWal(
      const std::string& prefix,
      const wal::WalOptions& options = wal::WalOptions()) {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    if (wal_enabled_) return wal::WalStatus::kAlreadyEnabled;
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    // New ids must clear whatever is already on disk at this prefix so
    // fresh segments never collide with (or get mistaken for) old ones.
    for (const wal::WalSegmentFile& f : wal::ListWalSegments(prefix)) {
      if (f.wal_id >= next_wal_id_) next_wal_id_ = f.wal_id + 1;
    }
    wal_prefix_ = prefix;
    wal_options_ = options;
    if (!AttachFreshLogs(&table->shards, /*parent=*/0)) {
      DetachLogs(table);
      return wal::WalStatus::kIoError;
    }
    wal_enabled_ = true;
    if (SaveToLocked(prefix) != core::SnapshotStatus::kOk) {
      DetachLogs(table);
      wal_enabled_ = false;
      return wal::WalStatus::kCheckpointFailed;
    }
    return wal::WalStatus::kOk;
  }

  bool wal_enabled() const {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    return wal_enabled_;
  }

  /// First WAL failure the write path swallowed (writes fail closed —
  /// they return false — but bool returns cannot say why). kOk when none.
  wal::WalStatus last_wal_error() const {
    return last_wal_error_.load(std::memory_order_relaxed);
  }

  /// Per-shard WAL ids, 0 for an unlogged shard (diagnostics/tests;
  /// requires quiescence like the other whole-table accessors).
  std::vector<uint64_t> WalIds() const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    std::vector<uint64_t> ids;
    ids.reserve(table->shards.size());
    for (const auto& shard : table->shards) {
      std::shared_lock<std::shared_mutex> gate(shard->write_gate);
      ids.push_back(shard->log != nullptr ? shard->log->wal_id() : 0);
    }
    return ids;
  }

  /// Full structural check: per-shard invariants, strictly increasing
  /// boundaries, every key routed to the shard that holds it, and the
  /// global count. Requires quiescence. Test hook; O(n).
  bool CheckInvariants() const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    const std::vector<K>& bounds = table->router.boundaries();
    if (bounds.size() + 1 != table->shards.size()) return false;
    for (size_t i = 1; i < bounds.size(); ++i) {
      if (!(bounds[i - 1] < bounds[i])) return false;
    }
    size_t total = 0;
    std::vector<std::pair<K, P>> pairs;
    for (size_t i = 0; i < table->shards.size(); ++i) {
      const auto& shard = table->shards[i];
      if (!shard->index.CheckInvariants()) return false;
      shard->index.RangeScan(std::numeric_limits<K>::lowest(),
                             std::numeric_limits<size_t>::max(), &pairs);
      if (pairs.size() != shard->index.size()) return false;
      for (const auto& [key, payload] : pairs) {
        (void)payload;
        if (table->router.Route(key) != i) return false;
      }
      total += pairs.size();
    }
    return total == size();
  }

 private:
  /// One shard: the index plus the write gate that lets a rebalance drain
  /// it. Shards are shared between successive tables (via shared_ptr) and
  /// die with the last table that references them, two epoch advances
  /// after that table retired.
  struct Shard {
    Shard(const core::Config& config, util::EpochManager* epoch)
        : index(config, epoch) {}
    core::ConcurrentAlex<K, P> index;
    // The shard's write-ahead log; null while the WAL is disabled.
    // Written under the exclusive gate (attach/detach), read under the
    // shared gate (the write path) — never touched by readers.
    std::shared_ptr<wal::ShardLog<K, P>> log;
    // Writers hold this shared for one committed operation; rebalance,
    // bulk load and save hold it exclusive. Readers never touch it.
    mutable std::shared_mutex write_gate;
    // Set under the exclusive gate, after the replacement table is
    // published: writers that still routed here re-route.
    std::atomic<bool> retired{false};
    // Committed-insert counter driving the amortized skew check. Shard-
    // local, so writers to different shards share no cache line.
    std::atomic<uint64_t> commit_count{0};
  };

  /// An immutable routing table: published with one store, read under an
  /// epoch guard, retired through EBR when replaced.
  struct Table {
    ShardRouter<K> router;
    std::vector<std::shared_ptr<Shard>> shards;
  };

  static size_t TotalKeys(const Table* table) {
    size_t total = 0;
    for (const auto& shard : table->shards) {
      total += shard->index.size();
    }
    return total;
  }

  // ---- WAL plumbing ----

  /// Logs one write (no-op while the WAL is off). Called with the
  /// shard's gate held shared, which is what orders it against
  /// checkpoints: a checkpoint's exclusive gate waits out the whole
  /// log+apply pair. False = the record could not be committed; the
  /// caller must fail the operation (fail closed, never apply an
  /// unlogged write).
  bool LogWrite(Shard* shard, wal::WalRecordType type, const K& key,
                const P* payload) {
    if (shard->log == nullptr) return true;
    const wal::WalStatus status = shard->log->Log(type, key, payload);
    if (status == wal::WalStatus::kOk) return true;
    wal::WalStatus expected = wal::WalStatus::kOk;
    last_wal_error_.compare_exchange_strong(expected, status,
                                            std::memory_order_relaxed);
    return false;
  }

  /// Opens one fresh log (new wal id, seq 1, LSN 0) per shard and
  /// attaches it under the shard's exclusive gate. On any open failure
  /// every log created here is removed again and false is returned.
  /// Caller holds rebalance_mutex_ (which guards next_wal_id_).
  bool AttachFreshLogs(std::vector<std::shared_ptr<Shard>>* shards,
                       uint64_t parent) {
    std::vector<std::shared_ptr<wal::ShardLog<K, P>>> logs;
    logs.reserve(shards->size());
    for (size_t i = 0; i < shards->size(); ++i) {
      auto log = std::make_shared<wal::ShardLog<K, P>>(
          wal_prefix_, next_wal_id_, parent, /*seq=*/1, /*start_lsn=*/0,
          wal_options_);
      if (log->Open() != wal::WalStatus::kOk) {
        for (const auto& created : logs) {
          std::remove(created->current_path().c_str());
        }
        return false;
      }
      ++next_wal_id_;
      logs.push_back(std::move(log));
    }
    for (size_t i = 0; i < shards->size(); ++i) {
      std::unique_lock<std::shared_mutex> gate((*shards)[i]->write_gate);
      (*shards)[i]->log = std::move(logs[i]);
    }
    return true;
  }

  void DetachLogs(Table* table) {
    for (const auto& shard : table->shards) {
      std::unique_lock<std::shared_mutex> gate(shard->write_gate);
      if (shard->log != nullptr) {
        std::remove(shard->log->current_path().c_str());
        shard->log.reset();
      }
    }
  }

  /// SaveTo minus the rebalance lock (BulkLoad and EnableWal checkpoint
  /// while already holding it). See SaveTo for the contract.
  core::SnapshotStatus SaveToLocked(const std::string& prefix) const {
    util::EpochManager::Guard guard(epoch_);
    // rebalance_mutex_ (held by the caller) excludes table replacement,
    // so this table stays current for the whole save.
    Table* table = table_.load(std::memory_order_seq_cst);
    std::vector<std::unique_lock<std::shared_mutex>> gates;
    gates.reserve(table->shards.size());
    for (const auto& shard : table->shards) {
      gates.emplace_back(shard->write_gate);
    }
    const bool wal_checkpoint = wal_enabled_ && prefix == wal_prefix_;
    // A committed snapshot at this prefix determines the previous
    // generation (for post-commit cleanup) and the next stamp.
    ShardManifest<K> previous;
    const bool had_previous =
        ReadManifest<K>(ManifestPath(prefix), &previous) ==
        core::SnapshotStatus::kOk;
    ShardManifest<K> manifest;
    manifest.generation = had_previous ? previous.generation + 1 : 1;
    manifest.boundaries = table->router.boundaries();
    manifest.router_model = table->router.model();
    manifest.next_wal_id = wal_checkpoint ? next_wal_id_ : 0;
    manifest.shard_keys.reserve(table->shards.size());
    for (size_t i = 0; i < table->shards.size(); ++i) {
      const std::string shard_path =
          ShardPath(prefix, manifest.generation, i);
      const core::SnapshotStatus status =
          table->shards[i]->index.SaveToFile(shard_path);
      if (status != core::SnapshotStatus::kOk) return status;
      // Durable before the manifest can reference it (and before the WAL
      // segments it supersedes are deleted below).
      if (!wal::SyncPath(shard_path)) {
        return core::SnapshotStatus::kIoError;
      }
      manifest.shard_keys.push_back(table->shards[i]->index.size());
      // With the gates held, log and index are in lockstep: this
      // snapshot holds exactly the effects of records up to last_lsn().
      const auto& log = table->shards[i]->log;
      if (wal_checkpoint && log != nullptr) {
        manifest.wal_ids.push_back(log->wal_id());
        manifest.checkpoint_lsns.push_back(log->last_lsn());
      } else {
        manifest.wal_ids.push_back(0);
        manifest.checkpoint_lsns.push_back(0);
      }
    }
    // Commit: write the manifest beside its final name, then rename over
    // it (atomic replace on POSIX).
    const std::string tmp = ManifestPath(prefix) + ".tmp";
    const core::SnapshotStatus status = WriteManifest(tmp, manifest);
    if (status != core::SnapshotStatus::kOk) return status;
    if (!wal::SyncPath(tmp)) {
      std::remove(tmp.c_str());
      return core::SnapshotStatus::kIoError;
    }
    if (std::rename(tmp.c_str(), ManifestPath(prefix).c_str()) != 0) {
      std::remove(tmp.c_str());
      return core::SnapshotStatus::kIoError;
    }
    // Persist the rename itself: only now is the checkpoint durably
    // committed and the cleanup below allowed to destroy what it
    // superseded.
    {
      std::string dir, base;
      wal::SplitPrefixPath(prefix, &dir, &base);
      if (!wal::SyncPath(dir)) return core::SnapshotStatus::kIoError;
    }
    // Post-commit, best-effort cleanup: the superseded generation's
    // shard files, any strays from crashed saves (other generations, or
    // same-generation indexes past the shard count), and — after a
    // checkpoint rotation — every WAL segment the snapshot covers.
    if (had_previous) {
      for (size_t i = 0; i < previous.num_shards(); ++i) {
        std::remove(
            ShardPath(prefix, previous.generation, i).c_str());
      }
    }
    SweepStaleSnapshots(prefix, manifest.generation,
                        table->shards.size());
    if (wal_checkpoint) {
      for (const auto& shard : table->shards) {
        if (shard->log != nullptr) {
          shard->log->Rotate();  // failure keeps the old segment current
        }
      }
      SweepStaleWalSegments(prefix, table);
    } else if (!wal_enabled_) {
      // This manifest records no checkpoint LSNs, so any segment left at
      // the prefix (e.g. the logs a recovery just replayed) would replay
      // *from LSN 0 over this newer snapshot* at the next load. They are
      // superseded by the committed snapshot: remove them all. Skipped
      // while logging is live: `prefix` could then be a spelled-
      // differently alias of wal_prefix_ (./db vs db), and sweeping
      // would unlink the live logs' current segments. (Recovery guards
      // the leftover-segment case anyway: with a manifest, an
      // unanchored lineage never replays.)
      SweepStaleWalSegments(prefix, /*table=*/nullptr);
    }
    return core::SnapshotStatus::kOk;
  }

  /// Parses `<base>.g<gen>.shard-<idx>` (the ShardPath format). Returns
  /// false for any other name.
  static bool ParseShardFileName(const std::string& name,
                                 const std::string& base, uint64_t* gen,
                                 uint64_t* idx) {
    const std::string marker = base + ".g";
    if (name.size() <= marker.size() ||
        name.compare(0, marker.size(), marker) != 0) {
      return false;
    }
    unsigned long long g = 0, i = 0;
    int consumed = 0;
    const char* tail = name.c_str() + marker.size();
    if (std::sscanf(tail, "%llu.shard-%llu%n", &g, &i, &consumed) != 2 ||
        tail[consumed] != '\0') {
      return false;
    }
    *gen = g;
    *idx = i;
    return true;
  }

  /// Removes every shard snapshot file at the prefix that the committed
  /// manifest does not reference: other generations (crashed saves,
  /// superseded snapshots) and same-generation strays past the shard
  /// count (a crashed wider save reusing the generation number).
  void SweepStaleSnapshots(const std::string& prefix, uint64_t generation,
                           size_t num_shards) const {
    std::string dir, base;
    wal::SplitPrefixPath(prefix, &dir, &base);
    std::vector<std::string> names;
    if (!wal::ListDirectory(dir, &names)) return;
    for (const std::string& name : names) {
      uint64_t gen = 0, idx = 0;
      if (ParseShardFileName(name, base, &gen, &idx) &&
          (gen != generation || idx >= num_shards)) {
        std::remove((dir + "/" + name).c_str());
      }
    }
  }

  /// Removes every WAL segment at the prefix that is not some live
  /// shard's *current* segment (all of them when `table` is null — a
  /// save without a checkpoint). Only called after a manifest commit,
  /// when the snapshot has made the swept segments (rotated-out seqs,
  /// sealed split victims, abandoned or replayed lineages) redundant.
  void SweepStaleWalSegments(const std::string& prefix,
                             Table* table) const {
    std::vector<std::pair<uint64_t, uint64_t>> keep;
    if (table != nullptr) {
      keep.reserve(table->shards.size());
      for (const auto& shard : table->shards) {
        if (shard->log != nullptr) {
          keep.emplace_back(shard->log->wal_id(), shard->log->seq());
        }
      }
    }
    for (const wal::WalSegmentFile& f : wal::ListWalSegments(prefix)) {
      if (std::find(keep.begin(), keep.end(),
                    std::make_pair(f.wal_id, f.seq)) == keep.end()) {
        std::remove(f.path.c_str());
      }
    }
  }

  bool ShouldSplit(size_t shard_keys, size_t total,
                   size_t num_shards) const {
    if (shard_keys < options_.min_rebalance_keys) return false;
    if (options_.max_shard_keys > 0 &&
        shard_keys > options_.max_shard_keys) {
      return true;
    }
    const double mean = static_cast<double>(total) /
                        static_cast<double>(num_shards);
    return static_cast<double>(shard_keys) >
           options_.rebalance_skew * mean;
  }

  /// Post-commit split trigger. The absolute bound costs one load of the
  /// just-written shard's own size; the relative skew check must read
  /// every shard's size, so it runs only on every kSkewCheckInterval-th
  /// commit into the shard (`commit` comes from the shard's own counter,
  /// so the trigger is deterministic under any interleaving) — the write
  /// hot path performs no cross-shard reads.
  static constexpr uint64_t kSkewCheckInterval = 1024;
  void MaybeSplit(Table* table, Shard* shard, K hint_key,
                  uint64_t commit) {
    const size_t shard_keys = shard->index.size();
    if (shard_keys < options_.min_rebalance_keys) return;
    const bool over_absolute = options_.max_shard_keys > 0 &&
                               shard_keys > options_.max_shard_keys;
    if (!over_absolute && (commit & (kSkewCheckInterval - 1)) != 0) {
      return;
    }
    if (!ShouldSplit(shard_keys, TotalKeys(table),
                     table->shards.size())) {
      return;
    }
    RebalanceShard(hint_key);
  }

  /// Splits the shard owning `hint_key` into options.split_ways shards.
  /// Non-blocking for rivals: bails out when another rebalance is in
  /// flight. Caller must hold an epoch guard.
  void RebalanceShard(K hint_key) {
    std::unique_lock<std::mutex> rebalance(rebalance_mutex_,
                                           std::try_to_lock);
    if (!rebalance.owns_lock()) return;
    Table* table = table_.load(std::memory_order_seq_cst);
    const size_t idx = table->router.Route(hint_key);
    const std::shared_ptr<Shard>& victim = table->shards[idx];
    // Re-check under the rebalance lock: a rival may already have split
    // this range, or erases may have deflated it.
    if (!ShouldSplit(victim->index.size(), TotalKeys(table),
                     table->shards.size())) {
      return;
    }
    const size_t ways = std::max<size_t>(2, options_.split_ways);
    // Drain the victim's writers; readers continue unhindered.
    std::unique_lock<std::shared_mutex> gate(victim->write_gate);
    std::vector<std::pair<K, P>> pairs;
    victim->index.RangeScan(std::numeric_limits<K>::lowest(),
                            std::numeric_limits<size_t>::max(), &pairs);
    const size_t n = pairs.size();
    if (n < ways) return;

    auto* next = new Table();
    next->shards.reserve(table->shards.size() + ways - 1);
    std::vector<K> boundaries = table->router.boundaries();
    std::vector<K> split_keys;
    split_keys.reserve(ways - 1);
    std::vector<K> part_keys;
    std::vector<P> part_payloads;
    std::vector<std::shared_ptr<Shard>> replacements;
    replacements.reserve(ways);
    for (size_t j = 0; j < ways; ++j) {
      const size_t lo = j * n / ways;
      const size_t hi = (j + 1) * n / ways;
      if (j > 0) split_keys.push_back(pairs[lo].first);
      part_keys.clear();
      part_payloads.clear();
      part_keys.reserve(hi - lo);
      part_payloads.reserve(hi - lo);
      for (size_t i = lo; i < hi; ++i) {
        part_keys.push_back(pairs[i].first);
        part_payloads.push_back(pairs[i].second);
      }
      auto shard = std::make_shared<Shard>(options_.shard_config, &epoch_);
      shard->index.BulkLoad(part_keys.data(), part_payloads.data(),
                            part_keys.size());
      replacements.push_back(std::move(shard));
    }
    // WAL hand-off: the replacements get fresh logs whose headers name
    // the victim's log as their parent; if the files cannot be opened
    // the split is simply abandoned (it is an optimization, and running
    // a shard unlogged is not an option).
    if (wal_enabled_ && victim->log != nullptr &&
        !AttachFreshLogs(&replacements, victim->log->wal_id())) {
      delete next;
      last_wal_error_.store(wal::WalStatus::kIoError,
                            std::memory_order_relaxed);
      return;
    }
    boundaries.insert(
        boundaries.begin() + static_cast<std::ptrdiff_t>(idx),
        split_keys.begin(), split_keys.end());
    next->router = ShardRouter<K>::FitFromBoundaries(std::move(boundaries));
    for (size_t i = 0; i < table->shards.size(); ++i) {
      if (i == idx) {
        for (auto& shard : replacements) {
          next->shards.push_back(std::move(shard));
        }
      } else {
        next->shards.push_back(table->shards[i]);
      }
    }
    table_.store(next, std::memory_order_seq_cst);
    victim->retired.store(true, std::memory_order_seq_cst);
    // Seal the victim's log at the publish LSN: its writers are drained
    // (we hold the gate exclusive), so the sealed log holds exactly the
    // records the replacements' contents were built from; everything
    // after goes to the replacements' fresh logs. Replay order is
    // victim-before-replacements by wal-id.
    if (victim->log != nullptr) victim->log->Seal();
    gate.unlock();
    rebalances_.fetch_add(1, std::memory_order_relaxed);
    // The old table (and, once no newer table shares them, its replaced
    // shard) is freed only after every reader that could hold it unpins.
    epoch_.Retire(table);
    epoch_.TryReclaim();
  }

  ShardedOptions options_;
  mutable util::EpochManager epoch_;
  // Serializes table replacement (rebalance, bulk load, save/load). Never
  // touched by point reads or writes.
  mutable std::mutex rebalance_mutex_;
  std::atomic<Table*> table_{nullptr};
  std::atomic<uint64_t> rebalances_{0};
  // WAL configuration; all guarded by rebalance_mutex_ (every site that
  // enables logging, allocates a wal id, or checkpoints holds it).
  std::string wal_prefix_;
  wal::WalOptions wal_options_;
  bool wal_enabled_ = false;
  uint64_t next_wal_id_ = 1;
  std::atomic<wal::WalStatus> last_wal_error_{wal::WalStatus::kOk};
};

}  // namespace alex::shard
