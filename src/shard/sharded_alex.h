// Sharded index service layer: N independent ConcurrentAlex shards behind
// a learned router (ROADMAP "production scale"; the step past the paper's
// single in-process tree that §7 gestures at).
//
// Why: even with the lock-free read path, one ConcurrentAlex has
// tree-global choke points — bulk loads swap a single root, every split
// retires through one epoch manager, and a hot leaf's latch serializes all
// writers of that range. Range-partitioning the key space makes those
// costs per-shard: bulk loads, splits, epoch advancement and leaf latches
// in different shards never interact, so the index scales with cores and
// a crashed process can restore shard-by-shard.
//
// Architecture:
//
//      ShardedAlex
//        table_  ──► Table { ShardRouter, shards[] }     (immutable)
//                          │
//          ┌───────────────┼──────────────────┐
//          ▼               ▼                  ▼
//       Shard 0         Shard 1    ...     Shard N-1
//     ConcurrentAlex  ConcurrentAlex     ConcurrentAlex
//     (-inf, b0)      [b0, b1)           [b_{N-2}, +inf)
//
// Protocol (mirrors the index's own EBR design one level up):
//
//   Routing.   `table_` points at an immutable Table: a ShardRouter (one
//     linear-model evaluation, binary-search fallback — router.h) plus the
//     shard array. Readers pin an epoch guard (util/epoch.h), load the
//     table with one seq_cst load, route, and operate on the shard with no
//     shard-layer locking of any kind.
//
//   Writes.   Writers additionally hold the target shard's `write_gate`
//     shared for the duration of one committed operation and re-route if
//     the shard is marked retired. The gate is what lets a rebalance drain
//     a shard: writers of *other* shards never contend on it, and readers
//     never touch it. There is no global key counter: size() sums the
//     per-shard counts, so writes to disjoint shards share no cache line
//     at the shard layer, and the split skew check (which must read every
//     shard's size) is amortized to every 1024th key committed into a
//     shard.
//
//   Rebalance.   When a shard's size exceeds the configured skew factor
//     times the mean (or an absolute bound), a rebalancer takes the
//     shard's gate exclusive — waiting out in-flight writers and excluding
//     new ones — extracts the now write-quiescent shard, builds the
//     replacement shards and a new Table off to the side, publishes the
//     table with one store, marks the victim retired (stragglers re-route)
//     and retires the old Table through EBR. Readers concurrently inside
//     the victim keep reading it: its contents are never erased, and the
//     Table (and with it the victim shard) is freed only two epoch
//     advances after retirement.
//
//   Scans.   A cross-shard RangeScan pins one table and stitches
//     per-shard scans in key order; shards are disjoint ascending ranges,
//     so concatenation is already sorted. Same read-committed contract as
//     ConcurrentAlex::RangeScan.
//
//   Durability.   SaveTo quiesces writers (all gates, in shard order),
//     writes one serialization.h snapshot per shard plus a checksummed
//     manifest (manifest.h) holding the boundaries, router model and
//     per-shard key counts. LoadFrom rebuilds the whole table off to the
//     side and publishes it only when every shard file validated, mapping
//     each failure to a distinct core::SnapshotStatus.
//
// Lock order: rebalance_mutex_ → write_gate(s) in ascending shard order.
// Point writes take exactly one gate shared and no mutex; reads take
// nothing.
#pragma once

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/concurrent_alex.h"
#include "core/config.h"
#include "core/serialization.h"
#include "shard/manifest.h"
#include "shard/router.h"
#include "util/epoch.h"

namespace alex::shard {

/// Tuning for ShardedAlex.
struct ShardedOptions {
  /// Shard count targeted by BulkLoad/LoadFrom (rebalances may grow it).
  size_t num_shards = 8;
  /// Split a shard once its size exceeds `rebalance_skew` times the mean
  /// shard size.
  double rebalance_skew = 4.0;
  /// Never split a shard smaller than this (keeps pathological churn away
  /// from tiny indexes).
  size_t min_rebalance_keys = 4096;
  /// Absolute per-shard size bound (0 = none). Lets a single-shard or
  /// uniformly growing table split even when no relative skew exists.
  size_t max_shard_keys = 1u << 20;
  /// How many shards one rebalance splits the victim into.
  size_t split_ways = 2;
  /// Maximum keys sampled for the bulk-load router model.
  size_t router_sample_cap = 4096;
  /// Configuration applied to every shard's ConcurrentAlex.
  core::Config shard_config;
};

/// A range-partitioned, learned-routed collection of ConcurrentAlex
/// shards. All methods are safe to call from any thread. Point operations
/// are linearizable; scans are read-committed (see the protocol above).
template <typename K, typename P>
class ShardedAlex {
 public:
  explicit ShardedAlex(const ShardedOptions& options = ShardedOptions())
      : options_(options) {
    auto* table = new Table();
    table->shards.push_back(
        std::make_shared<Shard>(options_.shard_config));
    table_.store(table, std::memory_order_seq_cst);
  }

  /// Retired tables drain through the epoch manager's destructor. Callers
  /// must guarantee quiescence, as for any destructor.
  ~ShardedAlex() { delete table_.load(std::memory_order_relaxed); }

  ShardedAlex(const ShardedAlex&) = delete;
  ShardedAlex& operator=(const ShardedAlex&) = delete;

  /// Replaces the contents with `n` strictly-increasing keys, partitioned
  /// evenly across (at most) options.num_shards shards. Concurrent
  /// operations that landed in the old table linearize before the bulk
  /// load; in-flight writers are drained shard by shard.
  void BulkLoad(const K* keys, const P* payloads, size_t n) {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    const size_t shards =
        std::max<size_t>(1, std::min(options_.num_shards,
                                     std::max<size_t>(n, 1)));
    auto* next = new Table();
    next->router = ShardRouter<K>::FitFromSortedKeys(
        keys, n, shards, options_.router_sample_cap);
    next->shards.reserve(shards);
    for (size_t j = 0; j < shards; ++j) {
      const size_t lo = j * n / shards;
      const size_t hi = (j + 1) * n / shards;
      auto shard = std::make_shared<Shard>(options_.shard_config);
      shard->index.BulkLoad(keys + lo, payloads + lo, hi - lo);
      next->shards.push_back(std::move(shard));
    }
    Table* old = table_.exchange(next, std::memory_order_seq_cst);
    util::EpochManager::Guard guard(epoch_);
    // Drain in-flight writers of every old shard and mark it retired so
    // stragglers re-route into the new table; once every gate has cycled,
    // no further commit can land in the old table.
    for (const auto& shard : old->shards) {
      std::unique_lock<std::shared_mutex> gate(shard->write_gate);
      shard->retired.store(true, std::memory_order_seq_cst);
    }
    epoch_.Retire(old);
    epoch_.TryReclaim();
  }

  /// Inserts; false on duplicate. One route + one shard-gate shared lock
  /// on top of the shard's own insert path. When the commit leaves the
  /// target shard oversized, the split runs synchronously on this thread
  /// before returning (the relative skew check itself is amortized — see
  /// MaybeSplit).
  bool Insert(K key, const P& payload) {
    util::EpochManager::Guard guard(epoch_);
    while (true) {
      Table* table = table_.load(std::memory_order_seq_cst);
      const size_t idx = table->router.Route(key);
      Shard* shard = table->shards[idx].get();
      std::shared_lock<std::shared_mutex> gate(shard->write_gate);
      if (shard->retired.load(std::memory_order_seq_cst)) {
        continue;  // raced a rebalance/bulk load: re-route
      }
      const bool inserted = shard->index.Insert(key, payload);
      gate.unlock();
      if (!inserted) return false;
      // The shard-local commit counter makes the amortized skew check
      // deterministic: exactly one committing thread observes each
      // kSkewCheckInterval-th commit, however commits interleave.
      const uint64_t commit =
          shard->commit_count.fetch_add(1, std::memory_order_relaxed) + 1;
      MaybeSplit(table, shard, key, commit);
      return true;
    }
  }

  /// Removes `key`; false when absent.
  bool Erase(K key) {
    util::EpochManager::Guard guard(epoch_);
    while (true) {
      Table* table = table_.load(std::memory_order_seq_cst);
      Shard* shard = table->shards[table->router.Route(key)].get();
      std::shared_lock<std::shared_mutex> gate(shard->write_gate);
      if (shard->retired.load(std::memory_order_seq_cst)) continue;
      return shard->index.Erase(key);
    }
  }

  /// Overwrites an existing payload; false when absent.
  bool Update(K key, const P& payload) {
    util::EpochManager::Guard guard(epoch_);
    while (true) {
      Table* table = table_.load(std::memory_order_seq_cst);
      Shard* shard = table->shards[table->router.Route(key)].get();
      std::shared_lock<std::shared_mutex> gate(shard->write_gate);
      if (shard->retired.load(std::memory_order_seq_cst)) continue;
      return shard->index.Update(key, payload);
    }
  }

  /// Copies the payload of `key` into `*out`; returns false when absent.
  /// No shard-layer locking: epoch guard + table load + route only.
  bool Get(K key, P* out) const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    return table->shards[table->router.Route(key)]->index.Get(key, out);
  }

  /// True when `key` is present (same lock-free path as Get).
  bool Contains(K key) const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    return table->shards[table->router.Route(key)]->index.Contains(key);
  }

  /// Cross-shard range scan: stitches per-shard scans in key order (the
  /// shards are disjoint ascending ranges, so the concatenation is
  /// sorted). Read-committed, like ConcurrentAlex::RangeScan; the whole
  /// scan uses the table pinned at entry, so a concurrent rebalance never
  /// tears it.
  size_t RangeScan(K start, size_t max_results,
                   std::vector<std::pair<K, P>>* out) const {
    out->clear();
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    size_t idx = table->router.Route(start);
    K resume = start;
    std::vector<std::pair<K, P>> chunk;
    while (out->size() < max_results && idx < table->shards.size()) {
      table->shards[idx]->index.RangeScan(
          resume, max_results - out->size(), &chunk);
      out->insert(out->end(), chunk.begin(), chunk.end());
      ++idx;
      if (idx < table->shards.size()) {
        resume = table->router.LowerBoundOf(idx);
      }
    }
    return out->size();
  }

  /// Total key count: the sum of per-shard counts, point-in-time per
  /// shard. There is deliberately no global counter for writers to
  /// contend on.
  size_t size() const {
    util::EpochManager::Guard guard(epoch_);
    return TotalKeys(table_.load(std::memory_order_seq_cst));
  }

  size_t num_shards() const {
    util::EpochManager::Guard guard(epoch_);
    return table_.load(std::memory_order_seq_cst)->shards.size();
  }

  /// Completed shard splits (diagnostics/tests).
  uint64_t rebalance_count() const {
    return rebalances_.load(std::memory_order_relaxed);
  }

  /// Current shard lower bounds (diagnostics/tests).
  std::vector<K> ShardBoundaries() const {
    util::EpochManager::Guard guard(epoch_);
    return table_.load(std::memory_order_seq_cst)->router.boundaries();
  }

  /// Shard index `key` routes to (diagnostics/tests).
  size_t ShardOf(K key) const {
    util::EpochManager::Guard guard(epoch_);
    return table_.load(std::memory_order_seq_cst)->router.Route(key);
  }

  /// Whole-table accounting; call only while no writers are in flight
  /// (bench/reporting hook), like the per-shard equivalents.
  size_t IndexSizeBytes() const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    size_t total = table->router.SizeBytes();
    for (const auto& shard : table->shards) {
      total += shard->index.IndexSizeBytes();
    }
    return total;
  }

  size_t DataSizeBytes() const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    size_t total = 0;
    for (const auto& shard : table->shards) {
      total += shard->index.DataSizeBytes();
    }
    return total;
  }

  // ---- Durability ----

  /// Path of the manifest / per-shard snapshot files for `prefix`. Shard
  /// files are stamped with the manifest's generation so a save never
  /// touches the files the committed manifest references.
  static std::string ManifestPath(const std::string& prefix) {
    return prefix + ".manifest";
  }
  static std::string ShardPath(const std::string& prefix,
                               uint64_t generation, size_t shard) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ".g%llu.shard-%04zu",
                  static_cast<unsigned long long>(generation), shard);
    return prefix + buf;
  }

  /// Writes one snapshot file per shard plus the manifest. Quiesces
  /// writers for the duration (all gates, ascending shard order), so the
  /// snapshot is a fully consistent point-in-time image; readers are
  /// never blocked. The save is all-or-nothing with respect to a
  /// previous snapshot at the same prefix: shard files are written under
  /// a fresh generation stamp, the manifest is committed with an atomic
  /// rename, and only then is the previous generation's data removed —
  /// a failure at any step leaves the old snapshot loadable.
  core::SnapshotStatus SaveTo(const std::string& prefix) const {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    util::EpochManager::Guard guard(epoch_);
    // rebalance_mutex_ excludes table replacement, so this table stays
    // current for the whole save.
    Table* table = table_.load(std::memory_order_seq_cst);
    std::vector<std::unique_lock<std::shared_mutex>> gates;
    gates.reserve(table->shards.size());
    for (const auto& shard : table->shards) {
      gates.emplace_back(shard->write_gate);
    }
    // A committed snapshot at this prefix determines the previous
    // generation (for post-commit cleanup) and the next stamp.
    ShardManifest<K> previous;
    const bool had_previous =
        ReadManifest<K>(ManifestPath(prefix), &previous) ==
        core::SnapshotStatus::kOk;
    ShardManifest<K> manifest;
    manifest.generation = had_previous ? previous.generation + 1 : 1;
    manifest.boundaries = table->router.boundaries();
    manifest.router_model = table->router.model();
    manifest.shard_keys.reserve(table->shards.size());
    for (size_t i = 0; i < table->shards.size(); ++i) {
      const core::SnapshotStatus status = table->shards[i]->index.SaveToFile(
          ShardPath(prefix, manifest.generation, i));
      if (status != core::SnapshotStatus::kOk) return status;
      manifest.shard_keys.push_back(table->shards[i]->index.size());
    }
    // Commit: write the manifest beside its final name, then rename over
    // it (atomic replace on POSIX).
    const std::string tmp = ManifestPath(prefix) + ".tmp";
    const core::SnapshotStatus status = WriteManifest(tmp, manifest);
    if (status != core::SnapshotStatus::kOk) return status;
    if (std::rename(tmp.c_str(), ManifestPath(prefix).c_str()) != 0) {
      std::remove(tmp.c_str());
      return core::SnapshotStatus::kIoError;
    }
    // Best-effort cleanup of the superseded generation's shard files.
    if (had_previous) {
      for (size_t i = 0; i < previous.num_shards(); ++i) {
        std::remove(
            ShardPath(prefix, previous.generation, i).c_str());
      }
    }
    return core::SnapshotStatus::kOk;
  }

  /// Replaces the contents from a SaveTo image. The replacement table is
  /// built entirely off to the side and published only when the manifest
  /// and every shard file validated; on any non-kOk status the live index
  /// is untouched. A shard file the manifest references but the
  /// filesystem lacks yields kMissingShard; a shard file whose key count
  /// disagrees with the manifest, or whose keys fall outside the shard's
  /// boundary range (a swapped or foreign file), yields
  /// kManifestMismatch.
  core::SnapshotStatus LoadFrom(const std::string& prefix) {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    ShardManifest<K> manifest;
    core::SnapshotStatus status =
        ReadManifest<K>(ManifestPath(prefix), &manifest);
    if (status != core::SnapshotStatus::kOk) return status;
    auto next = std::make_unique<Table>();
    next->router = ShardRouter<K>(manifest.boundaries,
                                  manifest.router_model);
    next->shards.reserve(manifest.num_shards());
    for (size_t i = 0; i < manifest.num_shards(); ++i) {
      std::vector<K> keys;
      std::vector<P> payloads;
      const std::string shard_path =
          ShardPath(prefix, manifest.generation, i);
      status = core::ReadSnapshotFile<K, P>(shard_path, &keys, &payloads);
      if (status == core::SnapshotStatus::kIoError) {
        // Only a file that is actually gone is "missing"; a file that
        // exists but cannot be opened or read (permissions, disk) stays
        // kIoError — keep the statuses honest.
        std::FILE* probe = std::fopen(shard_path.c_str(), "rb");
        if (probe != nullptr) {
          std::fclose(probe);
          return core::SnapshotStatus::kIoError;
        }
        return errno == ENOENT ? core::SnapshotStatus::kMissingShard
                               : core::SnapshotStatus::kIoError;
      }
      if (status != core::SnapshotStatus::kOk) return status;
      if (keys.size() != manifest.shard_keys[i]) {
        return core::SnapshotStatus::kManifestMismatch;
      }
      // Snapshots are sorted, so first/last bound the whole file: every
      // key must lie inside [boundaries[i-1], boundaries[i]). Catches
      // shard files that were swapped or replaced on disk even when the
      // key counts happen to agree.
      if (!keys.empty()) {
        if (i > 0 && keys.front() < manifest.boundaries[i - 1]) {
          return core::SnapshotStatus::kManifestMismatch;
        }
        if (i + 1 < manifest.num_shards() &&
            !(keys.back() < manifest.boundaries[i])) {
          return core::SnapshotStatus::kManifestMismatch;
        }
      }
      auto shard = std::make_shared<Shard>(options_.shard_config);
      shard->index.BulkLoad(keys.data(), payloads.data(), keys.size());
      next->shards.push_back(std::move(shard));
    }
    Table* old = table_.exchange(next.release(),
                                 std::memory_order_seq_cst);
    util::EpochManager::Guard guard(epoch_);
    for (const auto& shard : old->shards) {
      std::unique_lock<std::shared_mutex> gate(shard->write_gate);
      shard->retired.store(true, std::memory_order_seq_cst);
    }
    epoch_.Retire(old);
    epoch_.TryReclaim();
    return core::SnapshotStatus::kOk;
  }

  /// Full structural check: per-shard invariants, strictly increasing
  /// boundaries, every key routed to the shard that holds it, and the
  /// global count. Requires quiescence. Test hook; O(n).
  bool CheckInvariants() const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    const std::vector<K>& bounds = table->router.boundaries();
    if (bounds.size() + 1 != table->shards.size()) return false;
    for (size_t i = 1; i < bounds.size(); ++i) {
      if (!(bounds[i - 1] < bounds[i])) return false;
    }
    size_t total = 0;
    std::vector<std::pair<K, P>> pairs;
    for (size_t i = 0; i < table->shards.size(); ++i) {
      const auto& shard = table->shards[i];
      if (!shard->index.CheckInvariants()) return false;
      shard->index.RangeScan(std::numeric_limits<K>::lowest(),
                             std::numeric_limits<size_t>::max(), &pairs);
      if (pairs.size() != shard->index.size()) return false;
      for (const auto& [key, payload] : pairs) {
        (void)payload;
        if (table->router.Route(key) != i) return false;
      }
      total += pairs.size();
    }
    return total == size();
  }

 private:
  /// One shard: the index plus the write gate that lets a rebalance drain
  /// it. Shards are shared between successive tables (via shared_ptr) and
  /// die with the last table that references them, two epoch advances
  /// after that table retired.
  struct Shard {
    explicit Shard(const core::Config& config) : index(config) {}
    core::ConcurrentAlex<K, P> index;
    // Writers hold this shared for one committed operation; rebalance,
    // bulk load and save hold it exclusive. Readers never touch it.
    mutable std::shared_mutex write_gate;
    // Set under the exclusive gate, after the replacement table is
    // published: writers that still routed here re-route.
    std::atomic<bool> retired{false};
    // Committed-insert counter driving the amortized skew check. Shard-
    // local, so writers to different shards share no cache line.
    std::atomic<uint64_t> commit_count{0};
  };

  /// An immutable routing table: published with one store, read under an
  /// epoch guard, retired through EBR when replaced.
  struct Table {
    ShardRouter<K> router;
    std::vector<std::shared_ptr<Shard>> shards;
  };

  static size_t TotalKeys(const Table* table) {
    size_t total = 0;
    for (const auto& shard : table->shards) {
      total += shard->index.size();
    }
    return total;
  }

  bool ShouldSplit(size_t shard_keys, size_t total,
                   size_t num_shards) const {
    if (shard_keys < options_.min_rebalance_keys) return false;
    if (options_.max_shard_keys > 0 &&
        shard_keys > options_.max_shard_keys) {
      return true;
    }
    const double mean = static_cast<double>(total) /
                        static_cast<double>(num_shards);
    return static_cast<double>(shard_keys) >
           options_.rebalance_skew * mean;
  }

  /// Post-commit split trigger. The absolute bound costs one load of the
  /// just-written shard's own size; the relative skew check must read
  /// every shard's size, so it runs only on every kSkewCheckInterval-th
  /// commit into the shard (`commit` comes from the shard's own counter,
  /// so the trigger is deterministic under any interleaving) — the write
  /// hot path performs no cross-shard reads.
  static constexpr uint64_t kSkewCheckInterval = 1024;
  void MaybeSplit(Table* table, Shard* shard, K hint_key,
                  uint64_t commit) {
    const size_t shard_keys = shard->index.size();
    if (shard_keys < options_.min_rebalance_keys) return;
    const bool over_absolute = options_.max_shard_keys > 0 &&
                               shard_keys > options_.max_shard_keys;
    if (!over_absolute && (commit & (kSkewCheckInterval - 1)) != 0) {
      return;
    }
    if (!ShouldSplit(shard_keys, TotalKeys(table),
                     table->shards.size())) {
      return;
    }
    RebalanceShard(hint_key);
  }

  /// Splits the shard owning `hint_key` into options.split_ways shards.
  /// Non-blocking for rivals: bails out when another rebalance is in
  /// flight. Caller must hold an epoch guard.
  void RebalanceShard(K hint_key) {
    std::unique_lock<std::mutex> rebalance(rebalance_mutex_,
                                           std::try_to_lock);
    if (!rebalance.owns_lock()) return;
    Table* table = table_.load(std::memory_order_seq_cst);
    const size_t idx = table->router.Route(hint_key);
    const std::shared_ptr<Shard>& victim = table->shards[idx];
    // Re-check under the rebalance lock: a rival may already have split
    // this range, or erases may have deflated it.
    if (!ShouldSplit(victim->index.size(), TotalKeys(table),
                     table->shards.size())) {
      return;
    }
    const size_t ways = std::max<size_t>(2, options_.split_ways);
    // Drain the victim's writers; readers continue unhindered.
    std::unique_lock<std::shared_mutex> gate(victim->write_gate);
    std::vector<std::pair<K, P>> pairs;
    victim->index.RangeScan(std::numeric_limits<K>::lowest(),
                            std::numeric_limits<size_t>::max(), &pairs);
    const size_t n = pairs.size();
    if (n < ways) return;

    auto* next = new Table();
    next->shards.reserve(table->shards.size() + ways - 1);
    std::vector<K> boundaries = table->router.boundaries();
    std::vector<K> split_keys;
    split_keys.reserve(ways - 1);
    std::vector<K> part_keys;
    std::vector<P> part_payloads;
    std::vector<std::shared_ptr<Shard>> replacements;
    replacements.reserve(ways);
    for (size_t j = 0; j < ways; ++j) {
      const size_t lo = j * n / ways;
      const size_t hi = (j + 1) * n / ways;
      if (j > 0) split_keys.push_back(pairs[lo].first);
      part_keys.clear();
      part_payloads.clear();
      part_keys.reserve(hi - lo);
      part_payloads.reserve(hi - lo);
      for (size_t i = lo; i < hi; ++i) {
        part_keys.push_back(pairs[i].first);
        part_payloads.push_back(pairs[i].second);
      }
      auto shard = std::make_shared<Shard>(options_.shard_config);
      shard->index.BulkLoad(part_keys.data(), part_payloads.data(),
                            part_keys.size());
      replacements.push_back(std::move(shard));
    }
    boundaries.insert(
        boundaries.begin() + static_cast<std::ptrdiff_t>(idx),
        split_keys.begin(), split_keys.end());
    next->router = ShardRouter<K>::FitFromBoundaries(std::move(boundaries));
    for (size_t i = 0; i < table->shards.size(); ++i) {
      if (i == idx) {
        for (auto& shard : replacements) {
          next->shards.push_back(std::move(shard));
        }
      } else {
        next->shards.push_back(table->shards[i]);
      }
    }
    table_.store(next, std::memory_order_seq_cst);
    victim->retired.store(true, std::memory_order_seq_cst);
    gate.unlock();
    rebalances_.fetch_add(1, std::memory_order_relaxed);
    // The old table (and, once no newer table shares them, its replaced
    // shard) is freed only after every reader that could hold it unpins.
    epoch_.Retire(table);
    epoch_.TryReclaim();
  }

  ShardedOptions options_;
  mutable util::EpochManager epoch_;
  // Serializes table replacement (rebalance, bulk load, save/load). Never
  // touched by point reads or writes.
  mutable std::mutex rebalance_mutex_;
  std::atomic<Table*> table_{nullptr};
  std::atomic<uint64_t> rebalances_{0};
};

}  // namespace alex::shard
