// Sharded index service layer: N independent ConcurrentAlex shards behind
// a learned router (ROADMAP "production scale"; the step past the paper's
// single in-process tree that §7 gestures at).
//
// Why: even with the lock-free read path, one ConcurrentAlex has
// tree-global choke points — bulk loads swap a single root, every split
// retires through one epoch manager, and a hot leaf's latch serializes all
// writers of that range. Range-partitioning the key space makes those
// costs per-shard: bulk loads, splits, epoch advancement and leaf latches
// in different shards never interact, so the index scales with cores and
// a crashed process can restore shard-by-shard.
//
// Architecture:
//
//      ShardedAlex
//        table_  ──► Table { ShardRouter, shards[] }     (immutable)
//                          │
//          ┌───────────────┼──────────────────┐
//          ▼               ▼                  ▼
//       Shard 0         Shard 1    ...     Shard N-1
//     ConcurrentAlex  ConcurrentAlex     ConcurrentAlex
//     (-inf, b0)      [b0, b1)           [b_{N-2}, +inf)
//
// Protocol (mirrors the index's own EBR design one level up):
//
//   Routing.   `table_` points at an immutable Table: a ShardRouter (one
//     linear-model evaluation, binary-search fallback — router.h) plus the
//     shard array. Readers pin an epoch guard (util/epoch.h), load the
//     table with one seq_cst load, route, and operate on the shard with no
//     shard-layer locking of any kind.
//
//   Writes.   Writers additionally hold the target shard's `write_gate`
//     shared for the duration of one committed operation and re-route if
//     the shard is marked retired. The gate is what lets a rebalance drain
//     a shard: writers of *other* shards never contend on it, and readers
//     never touch it. There is no global key counter: size() sums the
//     per-shard counts, so writes to disjoint shards share no cache line
//     at the shard layer, and the split skew check (which must read every
//     shard's size) is amortized to every 1024th key committed into a
//     shard.
//
//   Topology transactions.   Every topology change — a *split* (one hot
//     shard → split_ways children, triggered by the skew check or the
//     absolute bound), a *merge* (two adjacent cold shards → one child,
//     triggered by the inverse skew check when erases shrink them under
//     the configured floor), and an explicit *rebalance* (re-even the
//     boundaries of an adjacent run, shard count unchanged) — runs
//     through one protocol, ExecuteTopologyTxn:
//
//       1. drain   the victims' write gates, taken exclusive in
//                  ascending order (in-flight writers finish, new ones
//                  wait or re-route);
//       2. build   the child shards off to the side from the victims'
//                  now write-quiescent contents;
//       3. log     open the children's WAL segments (directory-fsynced
//                  at creation) whose lineage names every victim —
//                  multi-parent via the kTopology record;
//       4. publish the replacement Table with one store;
//       5. seal    the victims' logs at the publish LSN (the drain
//                  guarantees no record lands in between — asserted);
//       6. retire  the victims (stragglers re-route) and the old Table
//                  through EBR.
//
//     The protocol's invariants live in that one function: gates are
//     drained before any seal, the seal LSN equals the publish LSN, and
//     parents are retired only after the children's segments are
//     durable in the directory. Readers concurrently inside a victim
//     keep reading it: its contents are never erased, and the Table
//     (and with it the victim shard) is freed only two epoch advances
//     after retirement.
//
//   Scans.   A cross-shard RangeScan pins one table and stitches
//     per-shard scans in key order; shards are disjoint ascending ranges,
//     so concatenation is already sorted. Same read-committed contract as
//     ConcurrentAlex::RangeScan.
//
//   Durability.   SaveTo quiesces writers (all gates, in shard order),
//     writes one serialization.h snapshot per shard plus a checksummed
//     manifest (manifest.h v3) holding the boundaries, router model,
//     per-shard key counts and wal lineage anchors. LoadFrom rebuilds
//     the whole table off to the side and publishes it only when every
//     shard file validated, mapping each failure to a distinct
//     core::SnapshotStatus. Recovery with a manifest is
//     *boundary-preserving* and shard-parallel: the manifest's boundary
//     array is the recovered topology, and each shard replays its own
//     snapshot + log-tail lineage independently on a small thread pool
//     (a merge child's records are range-filtered back to the shards
//     they came from) instead of funneling everything through one
//     merged map and a router refit.
//
//   Write-ahead logging.   EnableWal attaches one src/wal/ log per shard
//     and anchors it with a checkpoint. From then on every write is
//     log-before-apply under the same shared gate that already covers the
//     apply, so a checkpoint's exclusive gates see log and index in
//     lockstep. SaveTo doubles as the checkpoint: it records each log's
//     LSN in the manifest, rotates the segments, and deletes everything
//     the snapshot made redundant. LoadFrom doubles as recovery: snapshot
//     first, then the per-shard log tails replayed in wal-id order
//     (parent-before-child across shard splits — wal/wal_format.h), with
//     a torn final record truncated and every other corruption surfaced
//     as a distinct wal::WalStatus in the RecoveryReport. A shard split
//     seals the victim's log at the publish LSN (under the same
//     exclusive gate that drained its writers) and opens fresh segments
//     for the replacements. Recovery linearizes concurrent same-key
//     writes in log order, which for operations that overlapped in real
//     time may differ from apply order — either is a valid linearization
//     of the acknowledged history.
//
// Lock order: rebalance_mutex_ → write_gate(s) in ascending shard order.
// Point writes take exactly one gate shared and no mutex; reads take
// nothing. One epoch guard per operation: the shards share this layer's
// reclamation domain (the guard ConcurrentAlex pins internally is a
// reentrant no-op on ours).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <shared_mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/concurrent_alex.h"
#include "core/config.h"
#include "core/serialization.h"
#include "obs/inspect.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "shard/manifest.h"
#include "shard/router.h"
#include "tier/block_cache.h"
#include "tier/segment.h"
#include "util/epoch.h"
#include "util/parallel.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"
#include "wal/wal_format.h"

namespace alex::shard {

/// Tuning for ShardedAlex.
struct ShardedOptions {
  /// Shard count targeted by BulkLoad/LoadFrom (rebalances may grow it).
  size_t num_shards = 8;
  /// Split a shard once its size exceeds `rebalance_skew` times the mean
  /// shard size.
  double rebalance_skew = 4.0;
  /// Never split a shard smaller than this (keeps pathological churn away
  /// from tiny indexes).
  size_t min_rebalance_keys = 4096;
  /// Absolute per-shard size bound (0 = none). Lets a single-shard or
  /// uniformly growing table split even when no relative skew exists.
  size_t max_shard_keys = 1u << 20;
  /// How many shards one split turns the victim into.
  size_t split_ways = 2;
  /// Merge two adjacent shards once their *combined* size falls under
  /// this floor (the inverse of the skew check: two cold shards whose
  /// union is still a small shard). 0 disables merges. Keep it at or
  /// below min_rebalance_keys so a fresh merge child cannot immediately
  /// re-trip the split trigger.
  size_t merge_threshold_keys = 0;
  /// Maximum keys sampled for the bulk-load router model.
  size_t router_sample_cap = 4096;
  /// Recovery thread-pool width for the per-shard replay (clamped to
  /// the shard count and the hardware concurrency).
  size_t recovery_threads = 8;
  /// Fan-out width for cross-shard Scan/Aggregate (clamped to the number
  /// of shards the range overlaps, but deliberately *not* to the hardware
  /// concurrency — size it to the cores you want scans to use). <= 1 runs
  /// scans sequentially on the calling thread.
  size_t scan_threads = 4;
  // ---- Cold tier (src/tier/) ----
  /// Block-cache capacity in bytes for cold-segment reads (see
  /// tier/block_cache.h). Size it to the hot portion of the cold tier.
  size_t tier_cache_bytes = 16u << 20;
  /// Target cold-segment block size in bytes; the per-block key count is
  /// derived as max(64, tier_block_bytes / sizeof(record)).
  size_t tier_block_bytes = 4096;
  /// Directory/prefix where demotion writes its segment files. Empty
  /// defers to the WAL prefix; demotion fails when neither is set.
  std::string tier_prefix;
  /// TieringTick never demotes a shard holding fewer keys than this
  /// (tiny shards are not worth a segment file).
  size_t tier_min_demote_keys = 1024;
  /// TieringTick demotes a resident shard whose share of the window's
  /// traffic fell under `tier_demote_fraction` of the fair (1/n) share.
  double tier_demote_fraction = 0.1;
  /// TieringTick promotes a cold shard whose share of the window's
  /// traffic reached `tier_promote_share` times the fair share ...
  double tier_promote_share = 1.0;
  /// ... or whose delta overlay accumulated this many resident entries
  /// (a write-heavy cold shard pays double bookkeeping; bring it back).
  size_t tier_promote_delta_keys = 256;
  /// TieringTick is a no-op until the traffic window since the previous
  /// tick holds at least this many routed operations.
  uint64_t tier_min_window_ops = 1024;
  /// Configuration applied to every shard's ConcurrentAlex.
  core::Config shard_config;
};

/// A range-partitioned, learned-routed collection of ConcurrentAlex
/// shards. All methods are safe to call from any thread. Point operations
/// are linearizable; scans are read-committed (see the protocol above).
template <typename K, typename P>
class ShardedAlex {
 public:
  explicit ShardedAlex(const ShardedOptions& options = ShardedOptions())
      : options_(options), block_cache_(options.tier_cache_bytes) {
    auto* table = new Table();
    table->shards.push_back(
        std::make_shared<Shard>(options_.shard_config, &epoch_));
    table_.store(table, std::memory_order_seq_cst);
  }

  /// Retired tables drain through the epoch manager's destructor. Callers
  /// must guarantee quiescence, as for any destructor.
  ~ShardedAlex() {
    StopTiering();
    delete table_.load(std::memory_order_relaxed);
  }

  ShardedAlex(const ShardedAlex&) = delete;
  ShardedAlex& operator=(const ShardedAlex&) = delete;

  /// Replaces the contents with `n` strictly-increasing keys, partitioned
  /// evenly across (at most) options.num_shards shards. Concurrent
  /// operations that landed in the old table linearize before the bulk
  /// load; in-flight writers are drained shard by shard. While the WAL is
  /// enabled the load seals the old shards' logs, opens fresh ones, and
  /// re-checkpoints automatically (the bulk-loaded contents exist in no
  /// log, so only a snapshot can anchor them); a checkpoint failure
  /// disables logging — nothing could truthfully be called durable
  /// without the anchor — and records kCheckpointFailed in
  /// last_wal_error().
  void BulkLoad(const K* keys, const P* payloads, size_t n) {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    const size_t shards =
        std::max<size_t>(1, std::min(options_.num_shards,
                                     std::max<size_t>(n, 1)));
    auto* next = new Table();
    next->router = ShardRouter<K>::FitFromSortedKeys(
        keys, n, shards, options_.router_sample_cap);
    next->shards.reserve(shards);
    for (size_t j = 0; j < shards; ++j) {
      const size_t lo = j * n / shards;
      const size_t hi = (j + 1) * n / shards;
      auto shard = std::make_shared<Shard>(options_.shard_config, &epoch_);
      shard->index.BulkLoad(keys + lo, payloads + lo, hi - lo);
      next->shards.push_back(std::move(shard));
    }
    if (wal_enabled_ && !AttachFreshLogs(&next->shards, /*parents=*/{})) {
      // Could not open log files: surface the error and stop logging
      // rather than silently running some shards unlogged.
      wal_enabled_ = false;
      last_wal_error_.store(wal::WalStatus::kIoError,
                            std::memory_order_relaxed);
      ALEX_OBS_EVENT(obs::EventType::kWalError, obs::kShardAll, 0, 0,
                     static_cast<int>(wal::WalStatus::kIoError), 0);
    }
    Table* old = table_.exchange(next, std::memory_order_seq_cst);
    util::EpochManager::Guard guard(epoch_);
    // Drain in-flight writers of every old shard and mark it retired so
    // stragglers re-route into the new table; once every gate has cycled,
    // no further commit can land in the old table. The sealed logs keep
    // the old lineage replayable until the checkpoint below supersedes
    // it.
    for (const auto& shard : old->shards) {
      std::unique_lock<std::shared_mutex> gate(shard->write_gate);
      shard->retired.store(true, std::memory_order_seq_cst);
      if (shard->log != nullptr) {
        retired_commit_wait_.Merge(shard->log->CommitWaitHistogram());
        shard->log->Seal();
      }
    }
    epoch_.Retire(old);
    epoch_.TryReclaim();
    ALEX_OBS_EVENT(obs::EventType::kBulkLoad, obs::kShardAll, 0, 0, n,
                   shards);
    if (wal_enabled_ &&
        SaveToLocked(wal_prefix_) != core::SnapshotStatus::kOk) {
      // The bulk-loaded baseline now exists in no snapshot and no log;
      // continuing to log would let a recovery silently roll the index
      // back to the pre-load state while claiming the post-load writes
      // were durable. Fail closed: stop logging and surface the error.
      DetachLogs(table_.load(std::memory_order_seq_cst));
      wal_enabled_ = false;
      last_wal_error_.store(wal::WalStatus::kCheckpointFailed,
                            std::memory_order_relaxed);
      ALEX_OBS_EVENT(obs::EventType::kWalError, obs::kShardAll, 0, 0,
                     static_cast<int>(wal::WalStatus::kCheckpointFailed), 0);
    }
  }

  /// Inserts; false on duplicate. One route + one shard-gate shared lock
  /// on top of the shard's own insert path. When the commit leaves the
  /// target shard oversized, the split runs synchronously on this thread
  /// before returning (the relative skew check itself is amortized — see
  /// MaybeSplit).
  bool Insert(K key, const P& payload) {
    obs::ScopedOpTimer op_timer(obs::OpType::kInsert);
    util::EpochManager::Guard guard(epoch_);
    while (true) {
      Table* table = table_.load(std::memory_order_seq_cst);
      const size_t idx = table->router.Route(key);
      op_timer.set_shard(static_cast<uint32_t>(idx));
      Shard* shard = table->shards[idx].get();
      ALEX_OBS_TIMED_SHARED_LOCK(gate, shard->write_gate,
                                 "shard.write_gate_contended",
                                 "shard.write_gate_wait_ns");
      if (shard->retired.load(std::memory_order_seq_cst)) {
        continue;  // raced a rebalance/bulk load: re-route
      }
      shard->traffic.fetch_add(1, std::memory_order_relaxed);
      // Log-before-apply: the record replays as insert-if-absent, so a
      // duplicate that fails below is a no-op on replay too.
      if (!LogWrite(shard, wal::WalRecordType::kInsert, key, &payload)) {
        return false;
      }
      if (shard->cold()) {
        // Cold shards absorb writes into the delta overlay; the skew
        // check is moot (tiering owns their lifecycle).
        return shard->TierInsert(key, payload);
      }
      const bool inserted = shard->index.Insert(key, payload);
      gate.unlock();
      if (!inserted) return false;
      // The shard-local commit counter makes the amortized skew check
      // deterministic: exactly one committing thread observes each
      // kSkewCheckInterval-th commit, however commits interleave.
      const uint64_t commit =
          shard->commit_count.fetch_add(1, std::memory_order_relaxed) + 1;
      MaybeSplit(table, shard, key,
                 (commit & (kSkewCheckInterval - 1)) == 0);
      return true;
    }
  }

  /// Removes `key`; false when absent. An erase that leaves the target
  /// shard (plus an adjacent neighbor) under the merge floor triggers a
  /// merge transaction on this thread before returning; like the split
  /// skew check, the check is amortized to every kSkewCheckInterval-th
  /// commit into the shard.
  bool Erase(K key) {
    obs::ScopedOpTimer op_timer(obs::OpType::kErase);
    util::EpochManager::Guard guard(epoch_);
    while (true) {
      Table* table = table_.load(std::memory_order_seq_cst);
      const size_t idx = table->router.Route(key);
      op_timer.set_shard(static_cast<uint32_t>(idx));
      Shard* shard = table->shards[idx].get();
      ALEX_OBS_TIMED_SHARED_LOCK(gate, shard->write_gate,
                                 "shard.write_gate_contended",
                                 "shard.write_gate_wait_ns");
      if (shard->retired.load(std::memory_order_seq_cst)) continue;
      shard->traffic.fetch_add(1, std::memory_order_relaxed);
      if (!LogWrite(shard, wal::WalRecordType::kErase, key, nullptr)) {
        return false;
      }
      if (shard->cold()) return shard->TierErase(key);
      const bool erased = shard->index.Erase(key);
      gate.unlock();
      if (!erased) return false;
      const uint64_t commit =
          shard->commit_count.fetch_add(1, std::memory_order_relaxed) + 1;
      MaybeMerge(key, (commit & (kSkewCheckInterval - 1)) == 0);
      return true;
    }
  }

  /// Overwrites an existing payload; false when absent.
  bool Update(K key, const P& payload) {
    obs::ScopedOpTimer op_timer(obs::OpType::kUpdate);
    util::EpochManager::Guard guard(epoch_);
    while (true) {
      Table* table = table_.load(std::memory_order_seq_cst);
      const size_t idx = table->router.Route(key);
      op_timer.set_shard(static_cast<uint32_t>(idx));
      Shard* shard = table->shards[idx].get();
      ALEX_OBS_TIMED_SHARED_LOCK(gate, shard->write_gate,
                                 "shard.write_gate_contended",
                                 "shard.write_gate_wait_ns");
      if (shard->retired.load(std::memory_order_seq_cst)) continue;
      shard->traffic.fetch_add(1, std::memory_order_relaxed);
      if (!LogWrite(shard, wal::WalRecordType::kUpdate, key, &payload)) {
        return false;
      }
      if (shard->cold()) return shard->TierUpdate(key, payload);
      return shard->index.Update(key, payload);
    }
  }

  // ---- Batched operations ----
  //
  // Each batch is sorted once (an index permutation, so callers' arrays
  // stay in caller order) and executed as one *shard run* at a time: the
  // maximal stretch of consecutive sorted keys routing to one shard.
  // Costs amortized per run instead of per key: one write-gate shared
  // lock, one WAL group-commit batch (one write(2) + at most one
  // fdatasync(2) for the whole run), and — inside the shard — one epoch
  // guard with one leaf latch per leaf run. The router is still evaluated
  // once per key (run boundaries come from the router's own shard lower
  // bounds, one comparison per key). Batches are not atomic as a unit;
  // each key linearizes individually, exactly like the scalar ops.

  /// Batched Get. Fills `payloads[i]`/`found[i]` per key (caller order);
  /// returns the number found. Lock-free at the shard layer, like Get.
  size_t MultiGet(const K* keys, size_t n, P* payloads, bool* found) const {
    if (n == 0) return 0;
    obs::ScopedOpTimer op_timer(obs::OpType::kMultiGet);
    std::vector<size_t> order;
    std::vector<K> sorted_keys;
    SortBatch(keys, n, &order, &sorted_keys);
    std::vector<P> run_payloads(n);
    const std::unique_ptr<bool[]> run_found(new bool[n]());
    size_t hits = 0;
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    size_t i = 0;
    while (i < n) {
      const size_t idx = table->router.Route(sorted_keys[i]);
      const size_t j = RunEnd(table, idx, sorted_keys, i);
      Shard* shard = table->shards[idx].get();
      shard->traffic.fetch_add(j - i, std::memory_order_relaxed);
      if (shard->cold()) {
        for (size_t k = i; k < j; ++k) {
          run_found[k] = shard->TierGet(sorted_keys[k], &run_payloads[k],
                                        &block_cache_);
          hits += run_found[k] ? 1 : 0;
        }
      } else {
        hits += shard->index.MultiGet(sorted_keys.data() + i, j - i,
                                      run_payloads.data() + i,
                                      run_found.get() + i);
      }
      i = j;
    }
    for (size_t k = 0; k < n; ++k) {
      found[order[k]] = run_found[k];
      if (run_found[k]) payloads[order[k]] = run_payloads[k];
    }
    return hits;
  }

  /// Batched Insert; `inserted[i]` (when non-null, caller order) reports
  /// per-key success (false = duplicate, or the run's WAL batch failed).
  /// Returns the number inserted. Log-before-apply per run: the whole
  /// run's records group-commit as one WAL batch before any of the run
  /// is applied, and a failed batch fails the whole run closed.
  size_t MultiInsert(const K* keys, const P* payloads, size_t n,
                     bool* inserted = nullptr) {
    if (n == 0) return 0;
    obs::ScopedOpTimer op_timer(obs::OpType::kMultiInsert);
    std::vector<size_t> order;
    std::vector<K> sorted_keys;
    SortBatch(keys, n, &order, &sorted_keys);
    std::vector<P> sorted_payloads(n);
    for (size_t k = 0; k < n; ++k) sorted_payloads[k] = payloads[order[k]];
    const std::unique_ptr<bool[]> run_ok(new bool[n]());
    size_t count = 0;
    util::EpochManager::Guard guard(epoch_);
    size_t i = 0;
    while (i < n) {
      Table* table = table_.load(std::memory_order_seq_cst);
      const size_t idx = table->router.Route(sorted_keys[i]);
      Shard* shard = table->shards[idx].get();
      const size_t j = RunEnd(table, idx, sorted_keys, i);
      ALEX_OBS_TIMED_SHARED_LOCK(gate, shard->write_gate,
                                 "shard.write_gate_contended",
                                 "shard.write_gate_wait_ns");
      if (shard->retired.load(std::memory_order_seq_cst)) {
        continue;  // raced a topology transaction: re-route from key i
      }
      const size_t len = j - i;
      shard->traffic.fetch_add(len, std::memory_order_relaxed);
      if (!LogWriteBatch(shard, wal::WalRecordType::kInsert,
                         sorted_keys.data() + i, sorted_payloads.data() + i,
                         len)) {
        i = j;  // fail the run closed; later runs surface the same error
        continue;
      }
      if (shard->cold()) {
        size_t run_count = 0;
        for (size_t k = i; k < j; ++k) {
          run_ok[k] = shard->TierInsert(sorted_keys[k], sorted_payloads[k]);
          run_count += run_ok[k] ? 1 : 0;
        }
        gate.unlock();
        count += run_count;
        i = j;
        continue;  // no skew check: tiering owns cold shards
      }
      const size_t run_inserted = shard->index.MultiInsert(
          sorted_keys.data() + i, sorted_payloads.data() + i, len,
          run_ok.get() + i);
      gate.unlock();
      count += run_inserted;
      i = j;
      if (run_inserted > 0) {
        const uint64_t before = shard->commit_count.fetch_add(
            run_inserted, std::memory_order_relaxed);
        // The scalar path checks the skew on every kSkewCheckInterval-th
        // commit; a batch increment can jump the counter past the exact
        // multiple, so the tick fires when the run crossed one.
        MaybeSplit(table, shard, sorted_keys[i - 1],
                   CrossedSkewInterval(before, run_inserted));
      }
    }
    if (inserted != nullptr) {
      for (size_t k = 0; k < n; ++k) inserted[order[k]] = run_ok[k];
    }
    return count;
  }

  /// Batched Erase; `erased[i]` (when non-null, caller order) reports
  /// per-key success. Returns the number erased. One WAL group-commit
  /// batch per shard run, like MultiInsert.
  size_t MultiErase(const K* keys, size_t n, bool* erased = nullptr) {
    if (n == 0) return 0;
    obs::ScopedOpTimer op_timer(obs::OpType::kMultiErase);
    std::vector<size_t> order;
    std::vector<K> sorted_keys;
    SortBatch(keys, n, &order, &sorted_keys);
    const std::unique_ptr<bool[]> run_ok(new bool[n]());
    size_t count = 0;
    util::EpochManager::Guard guard(epoch_);
    size_t i = 0;
    while (i < n) {
      Table* table = table_.load(std::memory_order_seq_cst);
      const size_t idx = table->router.Route(sorted_keys[i]);
      Shard* shard = table->shards[idx].get();
      const size_t j = RunEnd(table, idx, sorted_keys, i);
      ALEX_OBS_TIMED_SHARED_LOCK(gate, shard->write_gate,
                                 "shard.write_gate_contended",
                                 "shard.write_gate_wait_ns");
      if (shard->retired.load(std::memory_order_seq_cst)) continue;
      const size_t len = j - i;
      shard->traffic.fetch_add(len, std::memory_order_relaxed);
      if (!LogWriteBatch(shard, wal::WalRecordType::kErase,
                         sorted_keys.data() + i, nullptr, len)) {
        i = j;
        continue;
      }
      if (shard->cold()) {
        size_t run_count = 0;
        for (size_t k = i; k < j; ++k) {
          run_ok[k] = shard->TierErase(sorted_keys[k]);
          run_count += run_ok[k] ? 1 : 0;
        }
        gate.unlock();
        count += run_count;
        i = j;
        continue;
      }
      const size_t run_erased = shard->index.MultiErase(
          sorted_keys.data() + i, len, run_ok.get() + i);
      gate.unlock();
      count += run_erased;
      i = j;
      if (run_erased > 0) {
        const uint64_t before = shard->commit_count.fetch_add(
            run_erased, std::memory_order_relaxed);
        MaybeMerge(sorted_keys[i - 1],
                   CrossedSkewInterval(before, run_erased));
      }
    }
    if (erased != nullptr) {
      for (size_t k = 0; k < n; ++k) erased[order[k]] = run_ok[k];
    }
    return count;
  }

  /// Copies the payload of `key` into `*out`; returns false when absent.
  /// No shard-layer locking: epoch guard + table load + route only.
  bool Get(K key, P* out) const {
    obs::ScopedOpTimer op_timer(obs::OpType::kGet);
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    const size_t idx = table->router.Route(key);
    op_timer.set_shard(static_cast<uint32_t>(idx));
    Shard* shard = table->shards[idx].get();
    shard->traffic.fetch_add(1, std::memory_order_relaxed);
    return shard->TierGet(key, out, &block_cache_);
  }

  /// True when `key` is present (same lock-free path as Get).
  bool Contains(K key) const {
    obs::ScopedOpTimer op_timer(obs::OpType::kContains);
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    const size_t idx = table->router.Route(key);
    op_timer.set_shard(static_cast<uint32_t>(idx));
    Shard* shard = table->shards[idx].get();
    shard->traffic.fetch_add(1, std::memory_order_relaxed);
    return shard->TierContains(key, &block_cache_);
  }

  /// Cross-shard range scan: stitches per-shard scans in key order (the
  /// shards are disjoint ascending ranges, so the concatenation is
  /// sorted). Read-committed, like ConcurrentAlex::RangeScan; the whole
  /// scan uses the table pinned at entry, so a concurrent rebalance never
  /// tears it.
  size_t RangeScan(K start, size_t max_results,
                   std::vector<std::pair<K, P>>* out) const {
    out->clear();
    obs::ScopedOpTimer op_timer(obs::OpType::kRangeScan);
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    size_t idx = table->router.Route(start);
    K resume = start;
    std::vector<std::pair<K, P>> chunk;
    while (out->size() < max_results && idx < table->shards.size()) {
      Shard* shard = table->shards[idx].get();
      shard->traffic.fetch_add(1, std::memory_order_relaxed);
      if (shard->cold()) {
        chunk.clear();
        const size_t want = max_results - out->size();
        shard->TierScanUntil(resume, std::numeric_limits<K>::max(),
                             [&](const K& key, const P& payload) {
                               chunk.emplace_back(key, payload);
                               return chunk.size() < want;
                             });
      } else {
        shard->index.RangeScan(resume, max_results - out->size(), &chunk);
      }
      out->insert(out->end(), chunk.begin(), chunk.end());
      ++idx;
      if (idx < table->shards.size()) {
        resume = table->router.LowerBoundOf(idx);
      }
    }
    return out->size();
  }

  /// Cross-shard streaming scan of [lo, hi], visiting every record in
  /// ascending key order as visit(key, payload) on the *calling* thread.
  /// One routing table is pinned for the whole scan. With
  /// options.scan_threads <= 1 (or a single overlapping shard) each
  /// shard's ConcurrentAlex::Scan streams straight into the visitor —
  /// zero buffering. Otherwise worker threads scan the overlapping shards
  /// concurrently into per-shard chunk queues and the caller drains the
  /// queues in shard order (the shards are disjoint ascending key ranges,
  /// so ordered concatenation of the streams is the k-way merge); the
  /// visitor is still never invoked concurrently. Read-committed per
  /// leaf, like RangeScan. Returns the number of records visited.
  template <typename Visitor>
  size_t Scan(K lo, K hi, Visitor&& visit) const {
    if (hi < lo) return 0;
    obs::ScopedOpTimer op_timer(obs::OpType::kScan);
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    const size_t first = table->router.Route(lo);
    const size_t last = table->router.Route(hi);
    const size_t n = last - first + 1;
    const size_t workers = std::min(options_.scan_threads, n);
    if (workers <= 1) {
      size_t total = 0;
      for (size_t s = first; s <= last; ++s) {
        total += ShardScan(table->shards[s].get(), lo, hi, visit);
      }
      return total;
    }
    // Parallel mode: shard i's results flow through queue i as chunks of
    // kScanChunkRecords pairs. Workers claim shards in ascending order
    // (util::ParallelFor's cursor guarantees shard i is claimed before
    // shard j > i), so the consumer draining queue 0, 1, ... in order can
    // never deadlock behind an unclaimed earlier shard. The caller's
    // epoch guard pins the table for the workers; each worker's shard
    // scan pins its own guard for the leaf walk.
    struct ChunkQueue {
      std::mutex mutex;
      std::condition_variable ready;
      std::deque<std::vector<std::pair<K, P>>> chunks;
      bool done = false;
    };
    std::vector<ChunkQueue> queues(n);
    std::thread pump([&] {
      util::ParallelFor(n, workers, [&](size_t i) {
        ChunkQueue& q = queues[i];
        std::vector<std::pair<K, P>> chunk;
        chunk.reserve(kScanChunkRecords);
        ShardScan(
            table->shards[first + i].get(), lo, hi,
            [&](const K& key, const P& payload) {
              chunk.emplace_back(key, payload);
              if (chunk.size() >= kScanChunkRecords) {
                {
                  std::lock_guard<std::mutex> lock(q.mutex);
                  q.chunks.push_back(std::move(chunk));
                }
                q.ready.notify_one();
                chunk = std::vector<std::pair<K, P>>();
                chunk.reserve(kScanChunkRecords);
              }
            });
        {
          std::lock_guard<std::mutex> lock(q.mutex);
          if (!chunk.empty()) q.chunks.push_back(std::move(chunk));
          q.done = true;
        }
        q.ready.notify_one();
      });
    });
    size_t total = 0;
    for (size_t i = 0; i < n; ++i) {
      ChunkQueue& q = queues[i];
      while (true) {
        std::vector<std::pair<K, P>> chunk;
        {
          std::unique_lock<std::mutex> lock(q.mutex);
          q.ready.wait(lock, [&] { return !q.chunks.empty() || q.done; });
          if (q.chunks.empty()) break;  // done and drained
          chunk = std::move(q.chunks.front());
          q.chunks.pop_front();
        }
        for (const auto& [key, payload] : chunk) visit(key, payload);
        total += chunk.size();
      }
    }
    pump.join();
    return total;
  }

  /// Cross-shard aggregate with full pushdown: the spec travels below the
  /// router into each overlapping shard, where per-leaf SIMD kernels fold
  /// count/sum/min/max without materializing a single record; the partial
  /// aggregates come back up and merge at the router in ascending shard
  /// order (so double sums are deterministic). The overlapping shard run
  /// fans out on options.scan_threads workers; the routing table pinned
  /// at entry serves the whole call. Read-committed per leaf, like Scan.
  core::AggResult<K, P> Aggregate(K lo, K hi,
                                  const core::AggSpec<P>& spec = {}) const {
    core::AggResult<K, P> result;
    if (hi < lo) return result;
    obs::ScopedOpTimer op_timer(obs::OpType::kAggregate);
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    const size_t first = table->router.Route(lo);
    const size_t last = table->router.Route(hi);
    const size_t n = last - first + 1;
    if (n == 1) {
      return AggregateShard(table->shards[first].get(), lo, hi, spec);
    }
    std::vector<core::AggResult<K, P>> partials(n);
    util::ParallelFor(n, std::min(options_.scan_threads, n), [&](size_t i) {
      partials[i] =
          AggregateShard(table->shards[first + i].get(), lo, hi, spec);
    });
    for (const auto& partial : partials) result.Merge(partial);
    return result;
  }

  /// Total key count: the sum of per-shard counts, point-in-time per
  /// shard. There is deliberately no global counter for writers to
  /// contend on.
  size_t size() const {
    util::EpochManager::Guard guard(epoch_);
    return TotalKeys(table_.load(std::memory_order_seq_cst));
  }

  size_t num_shards() const {
    util::EpochManager::Guard guard(epoch_);
    return table_.load(std::memory_order_seq_cst)->shards.size();
  }

  /// Completed shard splits (diagnostics/tests).
  uint64_t rebalance_count() const {
    return rebalances_.load(std::memory_order_relaxed);
  }

  /// Completed shard merges (diagnostics/tests).
  uint64_t merge_count() const {
    return merges_.load(std::memory_order_relaxed);
  }

  /// Total topology transactions (splits + merges + rebalances)
  /// committed over the index's lifetime; persisted by checkpoints and
  /// restored by LoadFrom, so the epoch is monotone across restarts.
  uint64_t topology_epoch() const {
    return topology_epoch_.load(std::memory_order_relaxed);
  }

  /// Explicitly re-evens the boundaries of every shard whose range
  /// intersects [lo_key, hi_key] — shard count unchanged, each child
  /// holding ~1/n of the victims' combined keys. The operator hook for
  /// un-carving a region after a churn storm; runs through the same
  /// topology transaction as splits and merges. One transaction handles
  /// at most wal::kMaxTopologyParents victims (a child's lineage record
  /// must name every one); a wider range is clamped — call again to
  /// continue. Returns false when the range maps to a single shard, a
  /// rival transaction is in flight, or the victims hold fewer keys
  /// than shards.
  bool Rebalance(K lo_key, K hi_key) {
    if (hi_key < lo_key) return false;
    util::EpochManager::Guard guard(epoch_);
    std::unique_lock<std::mutex> rebalance(rebalance_mutex_,
                                           std::try_to_lock);
    if (!rebalance.owns_lock()) return false;
    Table* table = table_.load(std::memory_order_seq_cst);
    const size_t lo = table->router.Route(lo_key);
    const size_t hi = std::min(table->router.Route(hi_key) + 1,
                               lo + wal::kMaxTopologyParents);
    if (hi - lo < 2) return false;
    return ExecuteTopologyTxn(TopologyOp::kRebalance, table, lo, hi,
                              hi - lo);
  }

  // ---- Tiered storage ----
  //
  // A shard is either *resident* (a ConcurrentAlex, the default) or
  // *cold*: its contents sealed into one checksummed, mmap-backed,
  // read-only segment (tier/segment.h) plus a small resident delta
  // overlay for post-demotion writes. Cold reads route through a
  // sharded-LRU block cache (tier/block_cache.h). Demotion, promotion
  // and compaction replace the one victim shard in a copied table —
  // same publish/retire protocol as a topology transaction, but the
  // shard's WAL log *moves* to the replacement instead of being sealed:
  // the logical shard (and its LSN stream) continues across the tier
  // transition, so recovery needs no tier-specific lineage handling.

  /// Demotes shard `idx` to a cold segment written at the tier prefix
  /// (options.tier_prefix, defaulting to the WAL prefix). kOk when the
  /// shard is already cold; kIoError when the shard is empty, no prefix
  /// is configured, or the segment cannot be written durably.
  core::SnapshotStatus DemoteShard(size_t idx) {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    return DemoteShardLocked(idx);
  }

  /// Promotes cold shard `idx` back to a resident ConcurrentAlex built
  /// from the merged segment+overlay stream. kOk when already resident.
  core::SnapshotStatus PromoteShard(size_t idx) {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    return PromoteShardLocked(idx);
  }

  /// Compacts cold shard `idx`: folds its delta overlay into a fresh
  /// segment (dropping overwritten and erased keys), emptying the
  /// overlay. A clean overlay is a no-op. A shard whose live count
  /// dropped to zero is promoted to an empty resident shard instead
  /// (segments cannot be empty).
  core::SnapshotStatus CompactShard(size_t idx) {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    return CompactShardLocked(idx);
  }

  /// Compacts every cold shard with a dirty overlay; returns how many
  /// compactions ran. The WAL-side effect matters as much as the
  /// segment: the next checkpoint references the compacted segments
  /// as-is, so the checkpoint-to-checkpoint replay chain shrinks by
  /// every record the fold retired.
  size_t Compact() {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    util::EpochManager::Guard guard(epoch_);
    size_t ran = 0;
    const size_t shards =
        table_.load(std::memory_order_seq_cst)->shards.size();
    for (size_t i = 0; i < shards; ++i) {
      Table* table = table_.load(std::memory_order_seq_cst);
      if (i >= table->shards.size()) break;
      Shard* shard = table->shards[i].get();
      if (!shard->cold() || shard->DeltaClean()) continue;
      if (CompactShardLocked(i) == core::SnapshotStatus::kOk) ++ran;
    }
    return ran;
  }

  /// One pass of the traffic-driven tiering policy. Reads each shard's
  /// routed-operation count since the previous tick; when the window
  /// holds at least options.tier_min_window_ops, demotes resident
  /// shards whose share fell under tier_demote_fraction of fair (and
  /// that hold tier_min_demote_keys keys), and promotes cold shards
  /// whose share reached tier_promote_share of fair or whose overlay
  /// grew past tier_promote_delta_keys entries. Returns the number of
  /// tier transitions; skips (returns 0) when a rival topology
  /// transaction holds the rebalance lock.
  size_t TieringTick() {
    std::unique_lock<std::mutex> rebalance(rebalance_mutex_,
                                           std::try_to_lock);
    if (!rebalance.owns_lock()) return 0;
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    const size_t n = table->shards.size();
    std::vector<uint64_t> window(n);
    uint64_t total = 0;
    for (size_t i = 0; i < n; ++i) {
      Shard* shard = table->shards[i].get();
      const uint64_t now = shard->traffic.load(std::memory_order_relaxed);
      window[i] = now - shard->traffic_mark;
      total += window[i];
    }
    if (total < options_.tier_min_window_ops) return 0;
    for (size_t i = 0; i < n; ++i) {
      Shard* shard = table->shards[i].get();
      shard->traffic_mark = shard->traffic.load(std::memory_order_relaxed);
    }
    const double fair =
        static_cast<double>(total) / static_cast<double>(n);
    size_t transitions = 0;
    // Tier transitions replace shards in place (count and order are
    // stable), so the indices gathered above stay valid across our own
    // publishes; the rebalance lock excludes everyone else's.
    for (size_t i = 0; i < n; ++i) {
      const Shard* shard =
          table_.load(std::memory_order_seq_cst)->shards[i].get();
      if (shard->cold()) {
        const bool hot_again =
            static_cast<double>(window[i]) >=
            fair * options_.tier_promote_share;
        const bool overlay_heavy =
            shard->DeltaEntries() >= options_.tier_promote_delta_keys;
        if ((hot_again || overlay_heavy) &&
            PromoteShardLocked(i) == core::SnapshotStatus::kOk) {
          ++transitions;
        }
      } else {
        const bool idle = static_cast<double>(window[i]) <=
                          fair * options_.tier_demote_fraction;
        if (idle && shard->TierSize() >= options_.tier_min_demote_keys &&
            DemoteShardLocked(i) == core::SnapshotStatus::kOk) {
          ++transitions;
        }
      }
    }
    return transitions;
  }

  /// Starts a background thread running TieringTick every
  /// `interval_ms`. Idempotent; StopTiering (or the destructor) joins
  /// it.
  void StartTiering(uint64_t interval_ms) {
    std::lock_guard<std::mutex> lock(tiering_mutex_);
    if (tiering_thread_.joinable()) return;
    tiering_stop_ = false;
    tiering_thread_ = std::thread([this, interval_ms] {
      std::unique_lock<std::mutex> lock(tiering_mutex_);
      while (!tiering_stop_) {
        tiering_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms));
        if (tiering_stop_) break;
        lock.unlock();
        TieringTick();
        lock.lock();
      }
    });
  }

  void StopTiering() {
    std::thread worker;
    {
      std::lock_guard<std::mutex> lock(tiering_mutex_);
      if (!tiering_thread_.joinable()) return;
      tiering_stop_ = true;
      worker = std::move(tiering_thread_);
    }
    tiering_cv_.notify_all();
    worker.join();
  }

  /// Tier of shard `idx` (diagnostics/tests).
  bool IsShardCold(size_t idx) const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    return idx < table->shards.size() && table->shards[idx]->cold();
  }

  size_t cold_shard_count() const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    size_t count = 0;
    for (const auto& shard : table->shards) {
      count += shard->cold() ? 1 : 0;
    }
    return count;
  }

  /// Bytes held in cold-tier segment files (the live table's).
  uint64_t ColdBytes() const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    uint64_t bytes = 0;
    for (const auto& shard : table->shards) {
      if (shard->cold()) bytes += shard->segment->file_bytes();
    }
    return bytes;
  }

  uint64_t demotion_count() const {
    return demotions_.load(std::memory_order_relaxed);
  }
  uint64_t promotion_count() const {
    return promotions_.load(std::memory_order_relaxed);
  }
  uint64_t compaction_count() const {
    return compactions_.load(std::memory_order_relaxed);
  }

  /// The cold-tier block cache (stats for benches/tests).
  const tier::BlockCache& block_cache() const { return block_cache_; }

  /// Aggregate per-commit WAL wait histogram (microsecond buckets)
  /// across every shard's log — p50/p99 via Quantile. Includes the
  /// samples of logs already sealed by topology transactions, bulk
  /// loads and recoveries (folded into an accumulator at seal time), so
  /// a run's distribution is not biased toward whatever logs happen to
  /// be live at the end. Empty while the WAL was never on.
  util::Log2Histogram CommitWaitHistogram() const {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    util::Log2Histogram merged = retired_commit_wait_;
    for (const auto& shard : table->shards) {
      std::shared_lock<std::shared_mutex> gate(shard->write_gate);
      if (shard->log != nullptr) {
        merged.Merge(shard->log->CommitWaitHistogram());
      }
    }
    return merged;
  }

  /// Current shard lower bounds (diagnostics/tests).
  std::vector<K> ShardBoundaries() const {
    util::EpochManager::Guard guard(epoch_);
    return table_.load(std::memory_order_seq_cst)->router.boundaries();
  }

  /// Shard index `key` routes to (diagnostics/tests).
  size_t ShardOf(K key) const {
    util::EpochManager::Guard guard(epoch_);
    return table_.load(std::memory_order_seq_cst)->router.Route(key);
  }

  /// Whole-table accounting; call only while no writers are in flight
  /// (bench/reporting hook), like the per-shard equivalents.
  size_t IndexSizeBytes() const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    size_t total = table->router.SizeBytes();
    for (const auto& shard : table->shards) {
      if (shard->cold()) {
        // A cold shard's resident metadata: the segment's fence model +
        // per-block checksums. The mapped data blocks live on disk (and
        // transiently in the block cache, accounted by its own stats).
        total += shard->segment->MetaSizeBytes();
      } else {
        total += shard->index.IndexSizeBytes();
      }
    }
    return total;
  }

  size_t DataSizeBytes() const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    size_t total = 0;
    for (const auto& shard : table->shards) {
      if (shard->cold()) {
        total += shard->DeltaEntries() * (sizeof(K) + sizeof(P));
      } else {
        total += shard->index.DataSizeBytes();
      }
    }
    return total;
  }

  // ---- Durability ----

  /// Path of the manifest / per-shard snapshot files for `prefix`. Shard
  /// files are stamped with the manifest's generation so a save never
  /// touches the files the committed manifest references.
  static std::string ManifestPath(const std::string& prefix) {
    return prefix + ".manifest";
  }
  static std::string ShardPath(const std::string& prefix,
                               uint64_t generation, size_t shard) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ".g%llu.shard-%04zu",
                  static_cast<unsigned long long>(generation), shard);
    return prefix + buf;
  }

  /// Writes one snapshot file per shard plus the manifest. Quiesces
  /// writers for the duration (all gates, ascending shard order), so the
  /// snapshot is a fully consistent point-in-time image; readers are
  /// never blocked. The save is all-or-nothing with respect to a
  /// previous snapshot at the same prefix: shard files are written under
  /// a fresh generation stamp, the manifest is committed with an atomic
  /// rename, and only then is the previous generation's data removed —
  /// a failure at any step leaves the old snapshot loadable.
  ///
  /// With the WAL enabled (and `prefix` equal to the WAL prefix) this is
  /// the *checkpoint*: the manifest records each shard log's LSN, the
  /// logs rotate onto fresh segments, and every segment the snapshot
  /// made redundant is deleted. Saving to a different prefix is a plain
  /// export and leaves the logs alone.
  core::SnapshotStatus SaveTo(const std::string& prefix) const {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    return SaveToLocked(prefix);
  }

  /// Replaces the contents from a SaveTo image — and, when WAL segments
  /// exist at the prefix, *recovers*: the snapshot is loaded first, then
  /// each log's tail (records past its checkpoint LSN) is replayed in
  /// wal-id order. The replacement table is built entirely off to the
  /// side and published only when the manifest, every shard file, and
  /// every log segment validated; on any non-kOk status the live index
  /// is untouched. A shard file the manifest references but the
  /// filesystem lacks yields kMissingShard; a shard file whose key count
  /// disagrees with the manifest, or whose keys fall outside the shard's
  /// boundary range (a swapped or foreign file), yields
  /// kManifestMismatch; an unreplayable log yields kWalReplayFailed with
  /// the distinct wal::WalStatus (and, on success, replay counts) in
  /// `*report`. A torn final record is tolerated: replay truncates it
  /// away and loses at most that one unacknowledged write.
  ///
  /// Recovery does not resume logging: call EnableWal afterwards, whose
  /// anchor checkpoint also retires the replayed segments.
  core::SnapshotStatus LoadFrom(const std::string& prefix,
                                wal::RecoveryReport* report = nullptr) {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    if (report != nullptr) *report = wal::RecoveryReport{};
    // While this index is itself logging, quiesce its writers for the
    // whole load: replay must never read (let alone truncate as "torn")
    // a batch a live group commit is still appending. Holding the gates
    // — rather than sealing the logs up front — means a load that
    // *fails* validation leaves the live index logging exactly as
    // before; only a successful load ends the old lineage.
    const bool was_logging = wal_enabled_;
    std::vector<std::unique_lock<std::shared_mutex>> quiesce;
    if (was_logging) {
      Table* live = table_.load(std::memory_order_seq_cst);
      quiesce.reserve(live->shards.size());
      for (const auto& shard : live->shards) {
        quiesce.emplace_back(shard->write_gate);
      }
    }
    ShardManifest<K> manifest;
    bool have_manifest = false;
    {
      // Distinguish "no snapshot was ever committed" (recovery can still
      // proceed from the logs alone) from an unreadable/corrupt one.
      std::FILE* probe = std::fopen(ManifestPath(prefix).c_str(), "rb");
      if (probe != nullptr) {
        std::fclose(probe);
        const core::SnapshotStatus status =
            ReadManifest<K>(ManifestPath(prefix), &manifest);
        if (status != core::SnapshotStatus::kOk) return status;
        have_manifest = true;
      }
    }
    const std::vector<wal::WalSegmentFile> segments =
        wal::ListWalSegments(prefix);
    if (!have_manifest && segments.empty()) {
      return core::SnapshotStatus::kIoError;  // nothing at this prefix
    }

    // Load and validate every snapshot shard file; cold shards have a
    // segment file instead, opened (mmap) and fully verified here.
    std::vector<std::vector<K>> shard_keys(manifest.num_shards());
    std::vector<std::vector<P>> shard_payloads(manifest.num_shards());
    std::vector<std::shared_ptr<tier::ColdSegment<K, P>>> cold_segments(
        manifest.num_shards());
    for (size_t i = 0; i < manifest.num_shards(); ++i) {
      if (manifest.IsCold(i)) {
        const std::string seg_path =
            tier::SegmentPath(prefix, manifest.segment_ids[i]);
        auto segment = std::make_shared<tier::ColdSegment<K, P>>();
        const core::SnapshotStatus status =
            segment->Open(seg_path, manifest.segment_ids[i]);
        if (status == core::SnapshotStatus::kIoError) {
          std::FILE* probe = std::fopen(seg_path.c_str(), "rb");
          if (probe != nullptr) {
            std::fclose(probe);
            return core::SnapshotStatus::kIoError;
          }
          return errno == ENOENT ? core::SnapshotStatus::kMissingShard
                                 : core::SnapshotStatus::kIoError;
        }
        if (status != core::SnapshotStatus::kOk) return status;
        // Open validates structure + metadata checksums; recovery also
        // pays one full data pass so a flipped block byte surfaces now,
        // not on some future read.
        if (segment->VerifyAllBlocks() != core::SnapshotStatus::kOk) {
          return core::SnapshotStatus::kSegmentCorrupt;
        }
        if (segment->num_keys() != manifest.shard_keys[i]) {
          return core::SnapshotStatus::kManifestMismatch;
        }
        if (i > 0 && segment->min_key() < manifest.boundaries[i - 1]) {
          return core::SnapshotStatus::kManifestMismatch;
        }
        if (i + 1 < manifest.num_shards() &&
            !(segment->max_key() < manifest.boundaries[i])) {
          return core::SnapshotStatus::kManifestMismatch;
        }
        cold_segments[i] = std::move(segment);
        continue;
      }
      std::vector<K>& keys = shard_keys[i];
      std::vector<P>& payloads = shard_payloads[i];
      const std::string shard_path =
          ShardPath(prefix, manifest.generation, i);
      core::SnapshotStatus status =
          core::ReadSnapshotFile<K, P>(shard_path, &keys, &payloads);
      if (status == core::SnapshotStatus::kIoError) {
        // Only a file that is actually gone is "missing"; a file that
        // exists but cannot be opened or read (permissions, disk) stays
        // kIoError — keep the statuses honest.
        std::FILE* probe = std::fopen(shard_path.c_str(), "rb");
        if (probe != nullptr) {
          std::fclose(probe);
          return core::SnapshotStatus::kIoError;
        }
        return errno == ENOENT ? core::SnapshotStatus::kMissingShard
                               : core::SnapshotStatus::kIoError;
      }
      if (status != core::SnapshotStatus::kOk) return status;
      if (keys.size() != manifest.shard_keys[i]) {
        return core::SnapshotStatus::kManifestMismatch;
      }
      // Snapshots are sorted, so first/last bound the whole file: every
      // key must lie inside [boundaries[i-1], boundaries[i]). Catches
      // shard files that were swapped or replaced on disk even when the
      // key counts happen to agree.
      if (!keys.empty()) {
        if (i > 0 && keys.front() < manifest.boundaries[i - 1]) {
          return core::SnapshotStatus::kManifestMismatch;
        }
        if (i + 1 < manifest.num_shards() &&
            !(keys.back() < manifest.boundaries[i])) {
          return core::SnapshotStatus::kManifestMismatch;
        }
      }
    }

    std::unique_ptr<Table> next;
    uint64_t floor_wal_id = manifest.next_wal_id;
    [[maybe_unused]] uint64_t journal_replayed = 0;  // kRecovery event
    if (segments.empty()) {
      // Pure snapshot load: rebuild the saved table exactly (same
      // shards, boundaries, and router model).
      next = std::make_unique<Table>();
      next->router = ShardRouter<K>(manifest.boundaries,
                                    manifest.router_model);
      next->shards.reserve(manifest.num_shards());
      for (size_t i = 0; i < manifest.num_shards(); ++i) {
        auto shard =
            std::make_shared<Shard>(options_.shard_config, &epoch_);
        if (manifest.IsCold(i)) {
          shard->cold_live.store(cold_segments[i]->num_keys(),
                                 std::memory_order_relaxed);
          shard->segment = std::move(cold_segments[i]);
        } else {
          shard->index.BulkLoad(shard_keys[i].data(),
                                shard_payloads[i].data(),
                                shard_keys[i].size());
        }
        next->shards.push_back(std::move(shard));
      }
    } else if (!have_manifest) {
      // Logs-alone recovery: no checkpoint ever committed, so there is
      // no topology to preserve — merge everything into one logical map
      // and partition fresh. Ascending wal-id order is parent-before-
      // child across topology changes, the only cross-log ordering
      // replay needs.
      std::map<K, P> state;
      wal::RecoveryReport local_report;
      wal::RecoveryReport* rep =
          report != nullptr ? report : &local_report;
      // Never physically truncate while the segments might belong to
      // this index's own live logs (their writers hold fd offsets past
      // the truncation point).
      const wal::WalStatus wal_status = wal::ReplayWal<K, P>(
          prefix, /*checkpoint_lsns=*/{}, &state, rep,
          /*truncate_torn_tail=*/!was_logging,
          /*require_known_roots=*/false);
      if (wal_status != wal::WalStatus::kOk) {
        return core::SnapshotStatus::kWalReplayFailed;
      }
      floor_wal_id = std::max(floor_wal_id, rep->max_wal_id + 1);
      journal_replayed = rep->records_replayed;

      std::vector<K> keys;
      std::vector<P> payloads;
      keys.reserve(state.size());
      payloads.reserve(state.size());
      for (const auto& [key, payload] : state) {
        keys.push_back(key);
        payloads.push_back(payload);
      }
      const size_t shards = std::max<size_t>(
          1, std::min(options_.num_shards,
                      std::max<size_t>(keys.size(), 1)));
      next = std::make_unique<Table>();
      next->router = ShardRouter<K>::FitFromSortedKeys(
          keys.data(), keys.size(), shards, options_.router_sample_cap);
      next->shards.reserve(shards);
      for (size_t j = 0; j < shards; ++j) {
        const size_t lo = j * keys.size() / shards;
        const size_t hi = (j + 1) * keys.size() / shards;
        auto shard =
            std::make_shared<Shard>(options_.shard_config, &epoch_);
        shard->index.BulkLoad(keys.data() + lo, payloads.data() + lo,
                              hi - lo);
        next->shards.push_back(std::move(shard));
      }
    } else {
      // Boundary-preserving recovery: the manifest's boundary array IS
      // the recovered topology, and each shard replays independently.
      wal::RecoveryReport local_report;
      wal::RecoveryReport* rep =
          report != nullptr ? report : &local_report;
      const core::SnapshotStatus status = RecoverBoundaryPreserving(
          prefix, manifest, shard_keys, shard_payloads, &cold_segments,
          was_logging, rep, &next);
      if (status != core::SnapshotStatus::kOk) return status;
      floor_wal_id = std::max(floor_wal_id, rep->max_wal_id + 1);
      journal_replayed = rep->records_replayed;
    }

    if (have_manifest) {
      topology_epoch_.store(manifest.topology_epoch,
                            std::memory_order_relaxed);
    }
    if (floor_wal_id > next_wal_id_) next_wal_id_ = floor_wal_id;
    // Fresh segment ids must clear the manifest's counter AND every
    // segment file on disk (a crashed demotion can leave a stray whose
    // id the crashed-away counter never persisted).
    {
      uint64_t floor_segment_id =
          have_manifest ? manifest.next_segment_id : 0;
      std::string dir, base;
      wal::SplitPrefixPath(prefix, &dir, &base);
      std::vector<std::string> names;
      if (wal::ListDirectory(dir, &names)) {
        for (const std::string& name : names) {
          uint64_t id = 0;
          bool is_tmp = false;
          if (tier::ParseSegmentFileName(name, base, &id, &is_tmp)) {
            floor_segment_id = std::max(floor_segment_id, id + 1);
          }
        }
      }
      if (floor_segment_id > next_segment_id_) {
        next_segment_id_ = floor_segment_id;
      }
    }
    // The recovered table starts unlogged (see the method comment); any
    // logs of the replaced table belong to an abandoned lineage, get
    // sealed below, and are swept by the next checkpoint. The quiesce
    // gates must drop before the retire loop re-takes them.
    wal_enabled_ = false;
    quiesce.clear();
    [[maybe_unused]] const size_t recovered_shards = next->shards.size();
    Table* old = table_.exchange(next.release(),
                                 std::memory_order_seq_cst);
    util::EpochManager::Guard guard(epoch_);
    for (const auto& shard : old->shards) {
      std::unique_lock<std::shared_mutex> gate(shard->write_gate);
      shard->retired.store(true, std::memory_order_seq_cst);
      if (shard->log != nullptr) {
        retired_commit_wait_.Merge(shard->log->CommitWaitHistogram());
        shard->log->Seal();
      }
    }
    epoch_.Retire(old);
    epoch_.TryReclaim();
    ALEX_OBS_EVENT(obs::EventType::kRecovery, obs::kShardAll, 0, 0,
                   journal_replayed, recovered_shards);
    return core::SnapshotStatus::kOk;
  }

  // ---- Write-ahead logging ----

  /// Starts logging every write to per-shard logs at `prefix` and
  /// anchors them with an initial checkpoint (so recovery always has a
  /// snapshot to replay onto). Typical lifecycles:
  ///
  ///   fresh:    ShardedAlex idx; idx.BulkLoad(...); idx.EnableWal(p);
  ///   restart:  ShardedAlex idx; idx.LoadFrom(p);   idx.EnableWal(p);
  ///
  /// The anchor checkpoint also sweeps any segments a previous
  /// incarnation left at the prefix, so enable-after-recover retires the
  /// very logs that were just replayed. Fails with kAlreadyEnabled when
  /// logging is already on, kIoError when a log file cannot be opened,
  /// and kCheckpointFailed when the anchor snapshot cannot commit (in
  /// which case logging stays off and the index is unchanged).
  wal::WalStatus EnableWal(
      const std::string& prefix,
      const wal::WalOptions& options = wal::WalOptions()) {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    if (wal_enabled_) return wal::WalStatus::kAlreadyEnabled;
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    // New ids must clear whatever is already on disk at this prefix so
    // fresh segments never collide with (or get mistaken for) old ones.
    for (const wal::WalSegmentFile& f : wal::ListWalSegments(prefix)) {
      if (f.wal_id >= next_wal_id_) next_wal_id_ = f.wal_id + 1;
    }
    wal_prefix_ = prefix;
    wal_options_ = options;
    if (!AttachFreshLogs(&table->shards, /*parents=*/{})) {
      DetachLogs(table);
      ALEX_OBS_EVENT(obs::EventType::kWalError, obs::kShardAll, 0, 0,
                     static_cast<int>(wal::WalStatus::kIoError), 0);
      return wal::WalStatus::kIoError;
    }
    wal_enabled_ = true;
    if (SaveToLocked(prefix) != core::SnapshotStatus::kOk) {
      DetachLogs(table);
      wal_enabled_ = false;
      ALEX_OBS_EVENT(obs::EventType::kWalError, obs::kShardAll, 0, 0,
                     static_cast<int>(wal::WalStatus::kCheckpointFailed), 0);
      return wal::WalStatus::kCheckpointFailed;
    }
    ALEX_OBS_EVENT(obs::EventType::kWalEnabled, obs::kShardAll,
                   table->shards.empty() || table->shards[0]->log == nullptr
                       ? 0
                       : table->shards[0]->log->wal_id(),
                   0, table->shards.size(), 0);
    return wal::WalStatus::kOk;
  }

  bool wal_enabled() const {
    std::lock_guard<std::mutex> rebalance(rebalance_mutex_);
    return wal_enabled_;
  }

  /// First WAL failure the write path swallowed (writes fail closed —
  /// they return false — but bool returns cannot say why). kOk when none.
  wal::WalStatus last_wal_error() const {
    return last_wal_error_.load(std::memory_order_relaxed);
  }

  /// Per-shard WAL ids, 0 for an unlogged shard (diagnostics/tests;
  /// requires quiescence like the other whole-table accessors).
  std::vector<uint64_t> WalIds() const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    std::vector<uint64_t> ids;
    ids.reserve(table->shards.size());
    for (const auto& shard : table->shards) {
      std::shared_lock<std::shared_mutex> gate(shard->write_gate);
      ids.push_back(shard->log != nullptr ? shard->log->wal_id() : 0);
    }
    return ids;
  }

  /// Full structural check: per-shard invariants, strictly increasing
  /// boundaries, every key routed to the shard that holds it, and the
  /// global count. Requires quiescence. Test hook; O(n).
  bool CheckInvariants() const {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    const std::vector<K>& bounds = table->router.boundaries();
    if (bounds.size() + 1 != table->shards.size()) return false;
    for (size_t i = 1; i < bounds.size(); ++i) {
      if (!(bounds[i - 1] < bounds[i])) return false;
    }
    size_t total = 0;
    for (size_t i = 0; i < table->shards.size(); ++i) {
      const auto& shard = table->shards[i];
      if (!shard->cold() && !shard->index.CheckInvariants()) return false;
      // Visitor-based drain: routing is checked record by record as the
      // scan streams — nothing is materialized. Cold shards stream the
      // merged overlay+segment view, which also exercises key order.
      bool routed_ok = true;
      K prev{};
      bool have_prev = false;
      const size_t scanned = ShardScan(
          shard.get(), std::numeric_limits<K>::lowest(),
          std::numeric_limits<K>::max(), [&](const K& key, const P&) {
            if (table->router.Route(key) != i) routed_ok = false;
            if (have_prev && !(prev < key)) routed_ok = false;
            prev = key;
            have_prev = true;
          });
      if (!routed_ok) return false;
      if (scanned != shard->TierSize()) return false;
      total += scanned;
    }
    return total == size();
  }

  /// Structural introspection (obs/inspect.h): per-shard tree shape —
  /// depth, leaf count, fill factor, gap density, tracked-model-error
  /// distribution, chain length — plus the merged totals, stamped with
  /// the topology epoch the walk observed. Safe against concurrent
  /// operations (epoch-guarded, per-leaf shared latches); the result is
  /// read-committed per leaf, like a scan.
  obs::StructureReport Inspect() const {
    obs::StructureReport report;
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    report.topology_epoch = topology_epoch_.load(std::memory_order_relaxed);
    report.shards.reserve(table->shards.size());
    for (size_t i = 0; i < table->shards.size(); ++i) {
      obs::ShardStructure s;
      s.shard = static_cast<uint32_t>(i);
      s.cold = table->shards[i]->cold();
      s.tree = table->shards[i]->index.CollectStructure();
      report.total.Merge(s.tree);
      report.shards.push_back(std::move(s));
    }
    return report;
  }

 private:
  /// One shard: the index plus the write gate that lets a rebalance drain
  /// it. Shards are shared between successive tables (via shared_ptr) and
  /// die with the last table that references them, two epoch advances
  /// after that table retired.
  struct Shard {
    Shard(const core::Config& config, util::EpochManager* epoch)
        : index(config, epoch) {}
    core::ConcurrentAlex<K, P> index;
    // The shard's write-ahead log; null while the WAL is disabled.
    // Written under the exclusive gate (attach/detach), read under the
    // shared gate (the write path) — never touched by readers.
    std::shared_ptr<wal::ShardLog<K, P>> log;
    // Writers hold this shared for one committed operation; rebalance,
    // bulk load and save hold it exclusive. Readers never touch it.
    mutable std::shared_mutex write_gate;
    // Set under the exclusive gate, after the replacement table is
    // published: writers that still routed here re-route.
    std::atomic<bool> retired{false};
    // Committed-insert counter driving the amortized skew check. Shard-
    // local, so writers to different shards share no cache line.
    std::atomic<uint64_t> commit_count{0};

    // ---- Cold tier ----
    //
    // A *cold* shard holds its checkpointed contents in one immutable
    // mmap-backed segment (tier/segment.h) instead of a ConcurrentAlex
    // (whose tree stays empty), plus a small resident *delta overlay*
    // for the writes that landed since demotion. Reads consult the
    // overlay first (a tombstone hides a segment key), then the segment
    // through the block cache. `segment` is set once when the cold
    // replacement shard is built and never reassigned, so the lock-free
    // read path can test cold() with no synchronization beyond the
    // table load that published the shard.
    std::shared_ptr<tier::ColdSegment<K, P>> segment;
    struct DeltaEntry {
      P payload{};
      bool tombstone = false;
    };
    mutable std::shared_mutex delta_mutex;
    std::map<K, DeltaEntry> delta;
    // Live key count of a cold shard (segment keys minus tombstones plus
    // overlay inserts); resident shards use index.size() instead.
    std::atomic<uint64_t> cold_live{0};
    // Routed operations since the shard was built — the signal the
    // tiering policy reads. `traffic_mark` is the policy's cursor into
    // it, touched only under rebalance_mutex_.
    mutable std::atomic<uint64_t> traffic{0};
    uint64_t traffic_mark = 0;

    bool cold() const { return segment != nullptr; }

    uint64_t TierSize() const {
      return cold() ? cold_live.load(std::memory_order_relaxed)
                    : index.size();
    }

    /// Segment read below the overlay: through the block cache when one
    /// is given (pinned copy + in-block model search), straight off the
    /// mapping otherwise. A block whose cached load fails (checksum)
    /// falls back to the raw mapping — the segment was fully verified
    /// when it was opened.
    bool SegmentGet(const K& key, P* out, tier::BlockCache* cache) const {
      if (key < segment->min_key() || segment->max_key() < key) {
        return false;
      }
      if (cache == nullptr) return segment->Get(key, out);
      const size_t b = segment->BlockOfKey(key);
      tier::BlockCache::Handle h = cache->GetOrLoad(
          segment->id(), b, [&](std::vector<uint8_t>* bytes) {
            return segment->LoadBlock(b, bytes) ==
                   core::SnapshotStatus::kOk;
          });
      if (!h.valid()) return segment->Get(key, out);
      return tier::ColdSegment<K, P>::SearchBlock(
          h.data(), segment->BlockKeys(b), key, out);
    }

    bool TierGet(const K& key, P* out, tier::BlockCache* cache) const {
      if (!cold()) return index.Get(key, out);
      {
        std::shared_lock<std::shared_mutex> lock(delta_mutex);
        const auto it = delta.find(key);
        if (it != delta.end()) {
          if (it->second.tombstone) return false;
          *out = it->second.payload;
          return true;
        }
      }
      return SegmentGet(key, out, cache);
    }

    bool TierContains(const K& key, tier::BlockCache* cache) const {
      P ignored;
      return TierGet(key, &ignored, cache);
    }

    // Cold-shard writes mutate only the overlay, under its exclusive
    // lock; callers hold the shard's write_gate shared and have already
    // logged the record, exactly like the resident path. Segment
    // membership checks read the raw mapping (no cache pollution).

    bool TierInsert(const K& key, const P& payload) {
      std::unique_lock<std::shared_mutex> lock(delta_mutex);
      const auto it = delta.find(key);
      if (it != delta.end()) {
        if (!it->second.tombstone) return false;  // duplicate
        it->second.payload = payload;
        it->second.tombstone = false;  // revive an erased segment key
        cold_live.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (segment->Contains(key)) return false;
      delta.emplace(key, DeltaEntry{payload, false});
      cold_live.fetch_add(1, std::memory_order_relaxed);
      return true;
    }

    bool TierErase(const K& key) {
      std::unique_lock<std::shared_mutex> lock(delta_mutex);
      const auto it = delta.find(key);
      if (it != delta.end()) {
        if (it->second.tombstone) return false;  // already erased
        if (segment->Contains(key)) {
          it->second.tombstone = true;  // keep hiding the segment key
        } else {
          delta.erase(it);
        }
        cold_live.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      if (!segment->Contains(key)) return false;
      delta.emplace(key, DeltaEntry{P{}, true});
      cold_live.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }

    bool TierUpdate(const K& key, const P& payload) {
      std::unique_lock<std::shared_mutex> lock(delta_mutex);
      const auto it = delta.find(key);
      if (it != delta.end()) {
        if (it->second.tombstone) return false;
        it->second.payload = payload;
        return true;
      }
      if (!segment->Contains(key)) return false;
      // Overwrite-if-present of a segment-resident key: shadow it.
      delta.emplace(key, DeltaEntry{payload, false});
      return true;
    }

    /// Merged scan of a cold shard over [lo, hi]: the overlay slice is
    /// snapshotted under the shared lock (so the segment stream — which
    /// reads the mapping, not the cache — never runs under it), then
    /// merge-joined with the segment in ascending key order. `visit`
    /// returns false to stop early. Returns the records visited.
    template <typename Visitor>
    size_t TierScanUntil(const K& lo, const K& hi, Visitor&& visit) const {
      std::vector<std::pair<K, DeltaEntry>> overlay;
      {
        std::shared_lock<std::shared_mutex> lock(delta_mutex);
        for (auto it = delta.lower_bound(lo);
             it != delta.end() && !(hi < it->first); ++it) {
          overlay.emplace_back(it->first, it->second);
        }
      }
      size_t d = 0;
      size_t count = 0;
      bool stopped = false;
      segment->ScanUntil(lo, hi, [&](const K& key, const P& payload) {
        while (d < overlay.size() && overlay[d].first < key) {
          const auto& e = overlay[d];
          ++d;
          if (e.second.tombstone) continue;
          ++count;
          if (!visit(e.first, e.second.payload)) {
            stopped = true;
            return false;
          }
        }
        if (d < overlay.size() && !(key < overlay[d].first)) {
          const DeltaEntry e = overlay[d].second;
          ++d;
          if (e.tombstone) return true;  // erased segment key
          ++count;  // updated segment key: overlay payload wins
          if (!visit(key, e.payload)) {
            stopped = true;
            return false;
          }
          return true;
        }
        ++count;
        if (!visit(key, payload)) {
          stopped = true;
          return false;
        }
        return true;
      });
      for (; !stopped && d < overlay.size(); ++d) {
        if (overlay[d].second.tombstone) continue;
        ++count;
        if (!visit(overlay[d].first, overlay[d].second.payload)) break;
      }
      return count;
    }

    bool DeltaClean() const {
      std::shared_lock<std::shared_mutex> lock(delta_mutex);
      return delta.empty();
    }

    size_t DeltaEntries() const {
      std::shared_lock<std::shared_mutex> lock(delta_mutex);
      return delta.size();
    }
  };

  /// An immutable routing table: published with one store, read under an
  /// epoch guard, retired through EBR when replaced.
  struct Table {
    ShardRouter<K> router;
    std::vector<std::shared_ptr<Shard>> shards;
  };

  static size_t TotalKeys(const Table* table) {
    size_t total = 0;
    for (const auto& shard : table->shards) {
      total += shard->TierSize();
    }
    return total;
  }

  /// Streaming scan of one shard, resident or cold, visitor returning
  /// void (the cross-shard Scan shape).
  template <typename Visitor>
  static size_t ShardScan(const Shard* shard, K lo, K hi,
                          Visitor&& visit) {
    if (!shard->cold()) return shard->index.Scan(lo, hi, visit);
    return shard->TierScanUntil(lo, hi, [&](const K& key, const P& p) {
      visit(key, p);
      return true;
    });
  }

  /// Aggregate pushdown for a cold shard: one merged overlay+segment
  /// stream folded with the same spec semantics as the resident
  /// per-leaf kernels (core/concurrent_alex.h AggregateLeafSlots).
  static core::AggResult<K, P> TierAggregate(const Shard* shard, K lo,
                                             K hi,
                                             const core::AggSpec<P>& spec) {
    core::AggResult<K, P> r;
    shard->TierScanUntil(lo, hi, [&](const K& key, const P& payload) {
      if constexpr (std::is_arithmetic_v<P>) {
        if (spec.has_payload_filter &&
            (payload < spec.filter_lo || spec.filter_hi < payload)) {
          return true;
        }
      }
      ++r.count;
      if (spec.count_only) return true;
      if (spec.field == core::AggField::kKeys) {
        r.keys.Add(key);
      } else if constexpr (std::is_arithmetic_v<P>) {
        r.payloads.Add(payload);
      }
      return true;
    });
    return r;
  }

  core::AggResult<K, P> AggregateShard(const Shard* shard, K lo, K hi,
                                       const core::AggSpec<P>& spec) const {
    return shard->cold() ? TierAggregate(shard, lo, hi, spec)
                         : shard->index.Aggregate(lo, hi, spec);
  }

  // ---- WAL plumbing ----

  /// Logs one write (no-op while the WAL is off). Called with the
  /// shard's gate held shared, which is what orders it against
  /// checkpoints: a checkpoint's exclusive gate waits out the whole
  /// log+apply pair. False = the record could not be committed; the
  /// caller must fail the operation (fail closed, never apply an
  /// unlogged write).
  bool LogWrite(Shard* shard, wal::WalRecordType type, const K& key,
                const P* payload) {
    if (shard->log == nullptr) return true;
    // The log itself feeds the op-context's wal_wait_ns from the commit
    // wait it already measures — no extra clock reads here.
    const wal::WalStatus status = shard->log->Log(type, key, payload);
    if (status == wal::WalStatus::kOk) return true;
    wal::WalStatus expected = wal::WalStatus::kOk;
    last_wal_error_.compare_exchange_strong(expected, status,
                                            std::memory_order_relaxed);
    ALEX_OBS_EVENT(obs::EventType::kWalError, obs::kShardAll,
                   shard->log->wal_id(), shard->log->last_lsn(),
                   static_cast<int>(status), 0);
    return false;
  }

  /// Batched LogWrite: the whole shard run group-commits as one WAL
  /// batch (ShardLog::LogBatch). Same fail-closed contract as LogWrite,
  /// applied to the run as a unit.
  bool LogWriteBatch(Shard* shard, wal::WalRecordType type, const K* keys,
                     const P* payloads, size_t n) {
    if (shard->log == nullptr) return true;
    const wal::WalStatus status =
        shard->log->LogBatch(type, keys, payloads, n);
    if (status == wal::WalStatus::kOk) return true;
    wal::WalStatus expected = wal::WalStatus::kOk;
    last_wal_error_.compare_exchange_strong(expected, status,
                                            std::memory_order_relaxed);
    ALEX_OBS_EVENT(obs::EventType::kWalError, obs::kShardAll,
                   shard->log->wal_id(), shard->log->last_lsn(),
                   static_cast<int>(status), 0);
    return false;
  }

  // ---- Batch plumbing ----

  /// Sorts a batch by key through an index permutation: `order[k]` is the
  /// caller index of the k-th smallest key, `sorted_keys[k]` that key.
  static void SortBatch(const K* keys, size_t n, std::vector<size_t>* order,
                        std::vector<K>* sorted_keys) {
    order->resize(n);
    std::iota(order->begin(), order->end(), size_t{0});
    // Ties break on the original position so duplicate keys keep their
    // batch order — the first occurrence is the one whose insert wins,
    // exactly as a scalar loop over the batch would behave.
    std::sort(order->begin(), order->end(), [keys](size_t a, size_t b) {
      return keys[a] < keys[b] || (keys[a] == keys[b] && a < b);
    });
    sorted_keys->resize(n);
    for (size_t k = 0; k < n; ++k) (*sorted_keys)[k] = keys[(*order)[k]];
  }

  /// First index in (i, n] of `sorted_keys` that no longer routes to
  /// shard `idx` of `table`: shards own contiguous ascending ranges, so
  /// the run ends at the first key reaching the next shard's lower bound.
  static size_t RunEnd(const Table* table, size_t idx,
                       const std::vector<K>& sorted_keys, size_t i) {
    const size_t n = sorted_keys.size();
    if (idx + 1 >= table->shards.size()) return n;
    const K next_lo = table->router.LowerBoundOf(idx + 1);
    size_t j = i + 1;
    while (j < n && sorted_keys[j] < next_lo) ++j;
    return j;
  }

  /// True when (before, before + delta] contains a multiple of
  /// kSkewCheckInterval — the batch analogue of the scalar path's
  /// `commit % kSkewCheckInterval == 0` tick, which a batched counter
  /// increment could otherwise jump past.
  static bool CrossedSkewInterval(uint64_t before, uint64_t delta) {
    return before / kSkewCheckInterval !=
           (before + delta) / kSkewCheckInterval;
  }

  /// Opens one fresh log (new wal id, seq 1, LSN 0) per shard and
  /// attaches it under the shard's exclusive gate. A non-empty
  /// `parents` list makes these topology children: the segment header
  /// names the first parent and the log's first record is a kTopology
  /// record listing all of them, fdatasync-durable before the child can
  /// acknowledge data. On any failure every log created here is removed
  /// again and false is returned. Caller holds rebalance_mutex_ (which
  /// guards next_wal_id_).
  bool AttachFreshLogs(std::vector<std::shared_ptr<Shard>>* shards,
                       const std::vector<uint64_t>& parents) {
    std::vector<std::shared_ptr<wal::ShardLog<K, P>>> logs;
    logs.reserve(shards->size());
    for (size_t i = 0; i < shards->size(); ++i) {
      auto log = std::make_shared<wal::ShardLog<K, P>>(
          wal_prefix_, next_wal_id_, parents.empty() ? 0 : parents.front(),
          /*seq=*/1, /*start_lsn=*/0, wal_options_);
      bool ok = log->Open() == wal::WalStatus::kOk;
      if (ok && !parents.empty()) {
        ok = log->LogTopology(parents) == wal::WalStatus::kOk;
      }
      if (!ok) {
        std::remove(log->current_path().c_str());
        for (const auto& created : logs) {
          std::remove(created->current_path().c_str());
        }
        return false;
      }
      ++next_wal_id_;
      logs.push_back(std::move(log));
    }
    for (size_t i = 0; i < shards->size(); ++i) {
      std::unique_lock<std::shared_mutex> gate((*shards)[i]->write_gate);
      (*shards)[i]->log = std::move(logs[i]);
    }
    return true;
  }

  void DetachLogs(Table* table) {
    for (const auto& shard : table->shards) {
      std::unique_lock<std::shared_mutex> gate(shard->write_gate);
      if (shard->log != nullptr) {
        std::remove(shard->log->current_path().c_str());
        shard->log.reset();
      }
    }
  }

  // ---- Boundary-preserving recovery ----

  /// True when `key` lies in manifest shard `shard`'s range
  /// [bounds[shard-1], bounds[shard]), open at both extremes.
  static bool KeyInShard(const K& key, size_t shard,
                         const std::vector<K>& bounds) {
    if (shard > 0 && key < bounds[shard - 1]) return false;
    if (shard < bounds.size() && !(key < bounds[shard])) return false;
    return true;
  }

  /// Runs fn(i) for i in [0, n) on a small thread pool (the per-shard
  /// recovery replay is embarrassingly parallel: distinct shards build
  /// distinct state). The pool itself lives in util::ParallelFor — the
  /// same pool the scan engine fans out on — with recovery's width policy
  /// applied here: recovery_threads, clamped to the hardware concurrency
  /// (replay is CPU-bound; oversubscription only adds contention).
  template <typename Fn>
  void ParallelOverShards(size_t n, Fn&& fn) const {
    size_t workers = std::max<size_t>(1, options_.recovery_threads);
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0) workers = std::min<size_t>(workers, hw);
    util::ParallelFor(n, workers, std::forward<Fn>(fn));
  }

  /// Rebuilds the table with the manifest's exact boundary array and
  /// router model, each shard recovered independently: its snapshot
  /// contents plus every log lineage rooted at its checkpoint anchor,
  /// replayed in ascending wal-id order. A topology child's records are
  /// range-filtered back to the manifest shards its parents anchor (a
  /// merge child spans several; each key's full history threads through
  /// logs of ascending id, so the filtered per-shard order is the true
  /// per-key order). Shards replay in parallel on a small thread pool —
  /// recovery is shard-parallel by construction because no two shards
  /// share mutable state. Fills one ShardReplayStats per shard in
  /// `rep->shards`.
  core::SnapshotStatus RecoverBoundaryPreserving(
      const std::string& prefix, const ShardManifest<K>& manifest,
      const std::vector<std::vector<K>>& shard_keys,
      const std::vector<std::vector<P>>& shard_payloads,
      std::vector<std::shared_ptr<tier::ColdSegment<K, P>>>* cold_segments,
      bool was_logging, wal::RecoveryReport* rep,
      std::unique_ptr<Table>* out) {
    std::map<uint64_t, uint64_t> checkpoints;
    std::map<uint64_t, size_t> root_shard;
    for (size_t i = 0; i < manifest.wal_ids.size(); ++i) {
      if (manifest.wal_ids[i] != 0) {
        checkpoints[manifest.wal_ids[i]] = manifest.checkpoint_lsns[i];
        root_shard[manifest.wal_ids[i]] = i;
      }
    }
    // Read + validate every lineage once (the expensive, checksummed
    // pass), then anchor the lineage graph: with a manifest, an orphan
    // lineage holding records must fail rather than replay over the
    // wrong baseline. Never physically truncate while the segments
    // might belong to this index's own live logs.
    std::vector<wal::WalLineage<K, P>> lineages;
    wal::WalStatus ws = wal::ReadWalLineages<K, P>(
        prefix, checkpoints, &lineages, rep,
        /*truncate_torn_tail=*/!was_logging);
    if (ws == wal::WalStatus::kOk) {
      ws = wal::AnchorLineages(&lineages, checkpoints,
                               /*require_known_roots=*/true, rep);
    }
    if (ws != wal::WalStatus::kOk) {
      return core::SnapshotStatus::kWalReplayFailed;
    }
    // Feed map: which manifest shards each lineage replays into. A
    // checkpoint root feeds its own shard; a topology child feeds the
    // union of its parents' shards (ascending wal-id order makes one
    // pass suffice — parents resolve before children).
    std::map<uint64_t, std::vector<size_t>> owners;
    std::vector<std::vector<size_t>> feeds(lineages.size());
    for (size_t l = 0; l < lineages.size(); ++l) {
      if (!lineages[l].anchored) continue;
      std::vector<size_t>& shards_of = feeds[l];
      const auto root = root_shard.find(lineages[l].wal_id);
      if (root != root_shard.end()) {
        shards_of.push_back(root->second);
      } else {
        for (const uint64_t parent : lineages[l].parents) {
          const auto it = owners.find(parent);
          if (it != owners.end()) {
            shards_of.insert(shards_of.end(), it->second.begin(),
                             it->second.end());
          }
        }
        std::sort(shards_of.begin(), shards_of.end());
        shards_of.erase(std::unique(shards_of.begin(), shards_of.end()),
                        shards_of.end());
      }
      owners[lineages[l].wal_id] = shards_of;
    }

    const size_t n = manifest.num_shards();
    auto next = std::make_unique<Table>();
    next->router =
        ShardRouter<K>(manifest.boundaries, manifest.router_model);
    next->shards.resize(n);
    rep->shards.assign(n, wal::ShardReplayStats{});
    Table* next_raw = next.get();
    // Per-shard replay, in parallel: workers touch disjoint slots of
    // next->shards and rep->shards.
    ParallelOverShards(n, [&](size_t i) {
      wal::ShardReplayStats& stats = (*rep).shards[i];
      stats.shard = i;
      stats.wal_id = manifest.wal_ids.size() > i ? manifest.wal_ids[i] : 0;
      if (manifest.IsCold(i)) {
        // A cold shard recovers as exactly the form it runs in: the
        // verified segment plus a delta overlay rebuilt from the log
        // tail (the records past its checkpoint LSN). TierInsert/
        // TierErase/TierUpdate are ApplyWalRecord's semantics over the
        // overlay, so the merged view equals the resident replay.
        auto shard =
            std::make_shared<Shard>(options_.shard_config, &epoch_);
        shard->cold_live.store((*cold_segments)[i]->num_keys(),
                               std::memory_order_relaxed);
        shard->segment = std::move((*cold_segments)[i]);
        for (size_t l = 0; l < lineages.size(); ++l) {
          if (std::find(feeds[l].begin(), feeds[l].end(), i) ==
              feeds[l].end()) {
            continue;
          }
          if (lineages[l].tail_truncated) stats.tail_truncated = true;
          for (const wal::WalRecord<K, P>& rec : lineages[l].records) {
            if (!KeyInShard(rec.key, i, manifest.boundaries)) continue;
            if (rec.lsn <= lineages[l].checkpoint_lsn) {
              ++stats.records_skipped;
              continue;
            }
            switch (rec.type) {
              case wal::WalRecordType::kInsert:
                shard->TierInsert(rec.key, rec.payload);
                break;
              case wal::WalRecordType::kUpdate:
                shard->TierUpdate(rec.key, rec.payload);
                break;
              case wal::WalRecordType::kErase:
                shard->TierErase(rec.key);
                break;
              default:
                break;
            }
            ++stats.records_replayed;
          }
        }
        next_raw->shards[i] = std::move(shard);
        return;
      }
      std::map<K, P> state;
      for (size_t j = 0; j < shard_keys[i].size(); ++j) {
        // Snapshot keys arrive sorted, so end() is always the right
        // hint: O(1) amortized per key.
        state.emplace_hint(state.end(), shard_keys[i][j],
                           shard_payloads[i][j]);
      }
      for (size_t l = 0; l < lineages.size(); ++l) {
        if (std::find(feeds[l].begin(), feeds[l].end(), i) ==
            feeds[l].end()) {
          continue;
        }
        if (lineages[l].tail_truncated) stats.tail_truncated = true;
        for (const wal::WalRecord<K, P>& rec : lineages[l].records) {
          if (!KeyInShard(rec.key, i, manifest.boundaries)) continue;
          if (rec.lsn <= lineages[l].checkpoint_lsn) {
            ++stats.records_skipped;
            continue;
          }
          wal::ApplyWalRecord(rec, &state);
          ++stats.records_replayed;
        }
      }
      std::vector<K> keys;
      std::vector<P> payloads;
      keys.reserve(state.size());
      payloads.reserve(state.size());
      for (const auto& [key, payload] : state) {
        keys.push_back(key);
        payloads.push_back(payload);
      }
      auto shard = std::make_shared<Shard>(options_.shard_config, &epoch_);
      shard->index.BulkLoad(keys.data(), payloads.data(), keys.size());
      next_raw->shards[i] = std::move(shard);
    });
    for (const wal::ShardReplayStats& stats : rep->shards) {
      rep->records_replayed += stats.records_replayed;
      rep->records_skipped += stats.records_skipped;
    }
    *out = std::move(next);
    return core::SnapshotStatus::kOk;
  }

  /// SaveTo minus the rebalance lock (BulkLoad and EnableWal checkpoint
  /// while already holding it). See SaveTo for the contract.
  core::SnapshotStatus SaveToLocked(const std::string& prefix) const {
    util::EpochManager::Guard guard(epoch_);
    // rebalance_mutex_ (held by the caller) excludes table replacement,
    // so this table stays current for the whole save.
    Table* table = table_.load(std::memory_order_seq_cst);
    std::vector<std::unique_lock<std::shared_mutex>> gates;
    gates.reserve(table->shards.size());
    for (const auto& shard : table->shards) {
      gates.emplace_back(shard->write_gate);
    }
    const bool wal_checkpoint = wal_enabled_ && prefix == wal_prefix_;
    // A committed snapshot at this prefix determines the previous
    // generation (for post-commit cleanup) and the next stamp.
    ShardManifest<K> previous;
    const bool had_previous =
        ReadManifest<K>(ManifestPath(prefix), &previous) ==
        core::SnapshotStatus::kOk;
    ShardManifest<K> manifest;
    manifest.generation = had_previous ? previous.generation + 1 : 1;
    manifest.boundaries = table->router.boundaries();
    manifest.router_model = table->router.model();
    manifest.next_wal_id = wal_checkpoint ? next_wal_id_ : 0;
    manifest.topology_epoch =
        topology_epoch_.load(std::memory_order_relaxed);
    manifest.shard_keys.reserve(table->shards.size());
    for (size_t i = 0; i < table->shards.size(); ++i) {
      Shard* shard = table->shards[i].get();
      uint64_t tier_tag = internal::kTierResident;
      uint64_t segment_id = 0;
      if (!shard->cold()) {
        const std::string shard_path =
            ShardPath(prefix, manifest.generation, i);
        const core::SnapshotStatus status =
            shard->index.SaveToFile(shard_path);
        if (status != core::SnapshotStatus::kOk) return status;
        // Durable before the manifest can reference it (and before the
        // WAL segments it supersedes are deleted below).
        if (!wal::SyncPath(shard_path)) {
          return core::SnapshotStatus::kIoError;
        }
      } else if (shard->DeltaClean() &&
                 shard->segment->path() ==
                     tier::SegmentPath(prefix, shard->segment->id())) {
        // Clean overlay, segment already durable at this prefix (the
        // demotion/compaction that built it committed it): reference it
        // as-is — the checkpoint writes zero bytes for this shard.
        tier_tag = internal::kTierCold;
        segment_id = shard->segment->id();
      } else {
        // Dirty overlay (or an export to a foreign prefix): fold the
        // merged stream into a fresh segment at `prefix`. The live
        // shard keeps its current segment+overlay; only the manifest
        // references the folded copy.
        std::vector<K> keys;
        std::vector<P> payloads;
        keys.reserve(shard->TierSize());
        payloads.reserve(shard->TierSize());
        shard->TierScanUntil(std::numeric_limits<K>::lowest(),
                             std::numeric_limits<K>::max(),
                             [&](const K& key, const P& payload) {
                               keys.push_back(key);
                               payloads.push_back(payload);
                               return true;
                             });
        if (keys.empty()) {
          // Fully erased: segments cannot be empty, so this shard
          // checkpoints as an empty resident snapshot.
          const std::string shard_path =
              ShardPath(prefix, manifest.generation, i);
          const core::SnapshotStatus status =
              core::WriteSnapshotFile<K, P>(shard_path, nullptr, nullptr,
                                            0);
          if (status != core::SnapshotStatus::kOk) return status;
          if (!wal::SyncPath(shard_path)) {
            return core::SnapshotStatus::kIoError;
          }
        } else {
          std::shared_ptr<tier::ColdSegment<K, P>> folded;
          const uint64_t seg_id = next_segment_id_++;
          const core::SnapshotStatus status =
              WriteAndOpenSegment(prefix, seg_id, keys.data(),
                                  payloads.data(), keys.size(), &folded);
          if (status != core::SnapshotStatus::kOk) return status;
          tier_tag = internal::kTierCold;
          segment_id = seg_id;
        }
      }
      manifest.shard_keys.push_back(shard->TierSize());
      manifest.tier_tags.push_back(tier_tag);
      manifest.segment_ids.push_back(segment_id);
      // With the gates held, log and index are in lockstep: this
      // snapshot holds exactly the effects of records up to last_lsn().
      const auto& log = shard->log;
      if (wal_checkpoint && log != nullptr) {
        manifest.wal_ids.push_back(log->wal_id());
        manifest.checkpoint_lsns.push_back(log->last_lsn());
      } else {
        manifest.wal_ids.push_back(0);
        manifest.checkpoint_lsns.push_back(0);
      }
    }
    manifest.next_segment_id = next_segment_id_;
    // Commit: write the manifest beside its final name, then rename over
    // it (atomic replace on POSIX).
    const std::string tmp = ManifestPath(prefix) + ".tmp";
    const core::SnapshotStatus status = WriteManifest(tmp, manifest);
    if (status != core::SnapshotStatus::kOk) return status;
    if (!wal::SyncPath(tmp)) {
      std::remove(tmp.c_str());
      return core::SnapshotStatus::kIoError;
    }
    if (std::rename(tmp.c_str(), ManifestPath(prefix).c_str()) != 0) {
      std::remove(tmp.c_str());
      return core::SnapshotStatus::kIoError;
    }
    // Persist the rename itself: only now is the checkpoint durably
    // committed and the cleanup below allowed to destroy what it
    // superseded.
    {
      std::string dir, base;
      wal::SplitPrefixPath(prefix, &dir, &base);
      if (!wal::SyncPath(dir)) return core::SnapshotStatus::kIoError;
    }
    {
      // Committed: journal the checkpoint with the highest LSN any shard
      // anchored (the point recovery replays from).
      uint64_t max_lsn = 0;
      for (const uint64_t lsn : manifest.checkpoint_lsns) {
        max_lsn = std::max(max_lsn, lsn);
      }
      ALEX_OBS_EVENT(obs::EventType::kCheckpoint, obs::kShardAll, 0, max_lsn,
                     manifest.generation, table->shards.size());
    }
    // Post-commit, best-effort cleanup: the superseded generation's
    // shard files, any strays from crashed saves (other generations, or
    // same-generation indexes past the shard count), and — after a
    // checkpoint rotation — every WAL segment the snapshot covers.
    if (had_previous) {
      for (size_t i = 0; i < previous.num_shards(); ++i) {
        std::remove(
            ShardPath(prefix, previous.generation, i).c_str());
      }
    }
    SweepStaleSnapshots(prefix, manifest.generation,
                        table->shards.size());
    SweepStaleSegments(prefix, manifest.segment_ids, table);
    if (wal_checkpoint) {
      for (const auto& shard : table->shards) {
        if (shard->log != nullptr) {
          shard->log->Rotate();  // failure keeps the old segment current
        }
      }
      SweepStaleWalSegments(prefix, table);
    } else if (!wal_enabled_) {
      // This manifest records no checkpoint LSNs, so any segment left at
      // the prefix (e.g. the logs a recovery just replayed) would replay
      // *from LSN 0 over this newer snapshot* at the next load. They are
      // superseded by the committed snapshot: remove them all. Skipped
      // while logging is live: `prefix` could then be a spelled-
      // differently alias of wal_prefix_ (./db vs db), and sweeping
      // would unlink the live logs' current segments. (Recovery guards
      // the leftover-segment case anyway: with a manifest, an
      // unanchored lineage never replays.)
      SweepStaleWalSegments(prefix, /*table=*/nullptr);
    }
    return core::SnapshotStatus::kOk;
  }

  /// Parses `<base>.g<gen>.shard-<idx>` (the ShardPath format). Returns
  /// false for any other name.
  static bool ParseShardFileName(const std::string& name,
                                 const std::string& base, uint64_t* gen,
                                 uint64_t* idx) {
    const std::string marker = base + ".g";
    if (name.size() <= marker.size() ||
        name.compare(0, marker.size(), marker) != 0) {
      return false;
    }
    unsigned long long g = 0, i = 0;
    int consumed = 0;
    const char* tail = name.c_str() + marker.size();
    if (std::sscanf(tail, "%llu.shard-%llu%n", &g, &i, &consumed) != 2 ||
        tail[consumed] != '\0') {
      return false;
    }
    *gen = g;
    *idx = i;
    return true;
  }

  /// Removes every shard snapshot file at the prefix that the committed
  /// manifest does not reference: other generations (crashed saves,
  /// superseded snapshots) and same-generation strays past the shard
  /// count (a crashed wider save reusing the generation number).
  void SweepStaleSnapshots(const std::string& prefix, uint64_t generation,
                           size_t num_shards) const {
    std::string dir, base;
    wal::SplitPrefixPath(prefix, &dir, &base);
    std::vector<std::string> names;
    if (!wal::ListDirectory(dir, &names)) return;
    for (const std::string& name : names) {
      uint64_t gen = 0, idx = 0;
      if (ParseShardFileName(name, base, &gen, &idx) &&
          (gen != generation || idx >= num_shards)) {
        std::remove((dir + "/" + name).c_str());
      }
    }
  }

  /// Removes every WAL segment at the prefix that is not some live
  /// shard's *current* segment (all of them when `table` is null — a
  /// save without a checkpoint). Only called after a manifest commit,
  /// when the snapshot has made the swept segments (rotated-out seqs,
  /// sealed split victims, abandoned or replayed lineages) redundant.
  void SweepStaleWalSegments(const std::string& prefix,
                             Table* table) const {
    std::vector<std::pair<uint64_t, uint64_t>> keep;
    if (table != nullptr) {
      keep.reserve(table->shards.size());
      for (const auto& shard : table->shards) {
        if (shard->log != nullptr) {
          keep.emplace_back(shard->log->wal_id(), shard->log->seq());
        }
      }
    }
    for (const wal::WalSegmentFile& f : wal::ListWalSegments(prefix)) {
      if (std::find(keep.begin(), keep.end(),
                    std::make_pair(f.wal_id, f.seq)) == keep.end()) {
        std::remove(f.path.c_str());
      }
    }
  }

  // ---- Tier lifecycle (all called with rebalance_mutex_ held) ----

  /// Where demotion writes segment files.
  std::string TierPrefix() const {
    return options_.tier_prefix.empty() ? wal_prefix_
                                        : options_.tier_prefix;
  }

  /// Keys per cold-segment block, from the configured byte target.
  size_t KeysPerBlock() const {
    return std::max<size_t>(
        64, options_.tier_block_bytes / (sizeof(K) + sizeof(P)));
  }

  void UpdateColdBytesGauge(const Table* table) const {
    [[maybe_unused]] uint64_t bytes = 0;
    for (const auto& shard : table->shards) {
      if (shard->cold()) bytes += shard->segment->file_bytes();
    }
    ALEX_OBS_GAUGE_SET("tier.cold_bytes", static_cast<double>(bytes));
  }

  /// Writes `n` records as segment `id` at `prefix`: staged under a
  /// .tmp name, fsynced, renamed into place, directory-fsynced — the
  /// same commit discipline as the manifest. On success opens the
  /// segment and returns it through `*out`.
  core::SnapshotStatus WriteAndOpenSegment(
      const std::string& prefix, uint64_t id, const K* keys,
      const P* payloads, size_t n,
      std::shared_ptr<tier::ColdSegment<K, P>>* out) const {
    const std::string path = tier::SegmentPath(prefix, id);
    const std::string tmp = path + ".tmp";
    core::SnapshotStatus status =
        tier::WriteSegmentFile<K, P>(tmp, keys, payloads, n,
                                     KeysPerBlock());
    if (status != core::SnapshotStatus::kOk) return status;
    if (!wal::SyncPath(tmp)) {
      std::remove(tmp.c_str());
      return core::SnapshotStatus::kIoError;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return core::SnapshotStatus::kIoError;
    }
    {
      std::string dir, base;
      wal::SplitPrefixPath(prefix, &dir, &base);
      if (!wal::SyncPath(dir)) return core::SnapshotStatus::kIoError;
    }
    auto segment = std::make_shared<tier::ColdSegment<K, P>>();
    status = segment->Open(path, id);
    if (status != core::SnapshotStatus::kOk) {
      std::remove(path.c_str());
      return status;
    }
    *out = std::move(segment);
    return core::SnapshotStatus::kOk;
  }

  /// Publishes a copy of the current table with shard `idx` replaced,
  /// then retires the victim. The victim's log MOVES to the replacement
  /// (not sealed): the logical shard continues, so its LSN stream must
  /// too. Runs the same drain→publish→retire steps as a topology
  /// transaction, for one shard.
  void ReplaceShard(Table* table, size_t idx,
                    std::shared_ptr<Shard> replacement,
                    std::unique_lock<std::shared_mutex>* gate) {
    Shard* victim = table->shards[idx].get();
    replacement->log = victim->log;
    replacement->traffic_mark = 0;
    auto* next = new Table();
    next->router = table->router;
    next->shards = table->shards;
    next->shards[idx] = std::move(replacement);
    table_.store(next, std::memory_order_seq_cst);
    victim->retired.store(true, std::memory_order_seq_cst);
    victim->log.reset();
    gate->unlock();
    epoch_.Retire(table);
    epoch_.TryReclaim();
    UpdateColdBytesGauge(next);
  }

  core::SnapshotStatus DemoteShardLocked(size_t idx) {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    if (idx >= table->shards.size()) {
      return core::SnapshotStatus::kIoError;
    }
    Shard* victim = table->shards[idx].get();
    if (victim->cold()) return core::SnapshotStatus::kOk;
    const std::string prefix = TierPrefix();
    if (prefix.empty()) return core::SnapshotStatus::kIoError;
    std::unique_lock<std::shared_mutex> gate(victim->write_gate);
    const size_t n = victim->index.size();
    if (n == 0) return core::SnapshotStatus::kIoError;  // nothing to seal
    std::vector<K> keys;
    std::vector<P> payloads;
    keys.reserve(n);
    payloads.reserve(n);
    victim->index.Scan(std::numeric_limits<K>::lowest(),
                       std::numeric_limits<K>::max(),
                       [&](const K& key, const P& payload) {
                         keys.push_back(key);
                         payloads.push_back(payload);
                       });
    const uint64_t seg_id = next_segment_id_++;
    std::shared_ptr<tier::ColdSegment<K, P>> segment;
    const core::SnapshotStatus status = WriteAndOpenSegment(
        prefix, seg_id, keys.data(), payloads.data(), n, &segment);
    if (status != core::SnapshotStatus::kOk) return status;
    auto cold = std::make_shared<Shard>(options_.shard_config, &epoch_);
    cold->segment = std::move(segment);
    cold->cold_live.store(n, std::memory_order_relaxed);
    ReplaceShard(table, idx, std::move(cold), &gate);
    demotions_.fetch_add(1, std::memory_order_relaxed);
    ALEX_OBS_COUNTER_INC("tier.demotions");
    ALEX_OBS_EVENT(obs::EventType::kTierDemotion,
                   static_cast<uint32_t>(idx), 0, 0,
                   static_cast<int64_t>(n),
                   static_cast<int64_t>(seg_id));
    return core::SnapshotStatus::kOk;
  }

  core::SnapshotStatus PromoteShardLocked(size_t idx) {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    if (idx >= table->shards.size()) {
      return core::SnapshotStatus::kIoError;
    }
    Shard* victim = table->shards[idx].get();
    if (!victim->cold()) return core::SnapshotStatus::kOk;
    std::unique_lock<std::shared_mutex> gate(victim->write_gate);
    std::vector<K> keys;
    std::vector<P> payloads;
    keys.reserve(victim->TierSize());
    payloads.reserve(victim->TierSize());
    victim->TierScanUntil(std::numeric_limits<K>::lowest(),
                          std::numeric_limits<K>::max(),
                          [&](const K& key, const P& payload) {
                            keys.push_back(key);
                            payloads.push_back(payload);
                            return true;
                          });
    const uint64_t old_segment = victim->segment->id();
    const uint64_t n = keys.size();
    auto resident =
        std::make_shared<Shard>(options_.shard_config, &epoch_);
    resident->index.BulkLoad(keys.data(), payloads.data(), keys.size());
    ReplaceShard(table, idx, std::move(resident), &gate);
    // The segment file is NOT unlinked here: the committed manifest may
    // still reference it (a crash before the next checkpoint must be
    // able to reopen it). The next checkpoint's sweep collects it.
    block_cache_.EraseSegment(old_segment);
    promotions_.fetch_add(1, std::memory_order_relaxed);
    ALEX_OBS_COUNTER_INC("tier.promotions");
    ALEX_OBS_EVENT(obs::EventType::kTierPromotion,
                   static_cast<uint32_t>(idx), 0, 0,
                   static_cast<int64_t>(n),
                   static_cast<int64_t>(old_segment));
    return core::SnapshotStatus::kOk;
  }

  core::SnapshotStatus CompactShardLocked(size_t idx) {
    util::EpochManager::Guard guard(epoch_);
    Table* table = table_.load(std::memory_order_seq_cst);
    if (idx >= table->shards.size()) {
      return core::SnapshotStatus::kIoError;
    }
    Shard* victim = table->shards[idx].get();
    if (!victim->cold()) return core::SnapshotStatus::kOk;
    if (victim->DeltaClean()) return core::SnapshotStatus::kOk;
    if (victim->TierSize() == 0) {
      // Everything erased: a segment cannot be empty, so the compacted
      // form of this shard is an empty resident one.
      return PromoteShardLocked(idx);
    }
    const std::string prefix = TierPrefix();
    if (prefix.empty()) return core::SnapshotStatus::kIoError;
    std::unique_lock<std::shared_mutex> gate(victim->write_gate);
    std::vector<K> keys;
    std::vector<P> payloads;
    keys.reserve(victim->TierSize());
    payloads.reserve(victim->TierSize());
    victim->TierScanUntil(std::numeric_limits<K>::lowest(),
                          std::numeric_limits<K>::max(),
                          [&](const K& key, const P& payload) {
                            keys.push_back(key);
                            payloads.push_back(payload);
                            return true;
                          });
    const uint64_t old_segment = victim->segment->id();
    const uint64_t seg_id = next_segment_id_++;
    std::shared_ptr<tier::ColdSegment<K, P>> segment;
    const core::SnapshotStatus status =
        WriteAndOpenSegment(prefix, seg_id, keys.data(), payloads.data(),
                            keys.size(), &segment);
    if (status != core::SnapshotStatus::kOk) return status;
    auto cold = std::make_shared<Shard>(options_.shard_config, &epoch_);
    cold->segment = std::move(segment);
    cold->cold_live.store(keys.size(), std::memory_order_relaxed);
    ReplaceShard(table, idx, std::move(cold), &gate);
    block_cache_.EraseSegment(old_segment);
    compactions_.fetch_add(1, std::memory_order_relaxed);
    ALEX_OBS_COUNTER_INC("tier.compactions");
    ALEX_OBS_EVENT(obs::EventType::kTierCompaction,
                   static_cast<uint32_t>(idx), 0, 0,
                   static_cast<int64_t>(keys.size()),
                   static_cast<int64_t>(seg_id));
    return core::SnapshotStatus::kOk;
  }

  /// Removes cold-segment files at `prefix` that neither the committed
  /// manifest (`keep`) nor the live table references, plus every .tmp
  /// stray a crashed writer left behind. Post-commit, best-effort, like
  /// the snapshot/WAL sweeps.
  void SweepStaleSegments(const std::string& prefix,
                          std::vector<uint64_t> keep,
                          const Table* table) const {
    for (const auto& shard : table->shards) {
      if (shard->cold() &&
          shard->segment->path() ==
              tier::SegmentPath(prefix, shard->segment->id())) {
        keep.push_back(shard->segment->id());
      }
    }
    std::string dir, base;
    wal::SplitPrefixPath(prefix, &dir, &base);
    std::vector<std::string> names;
    if (!wal::ListDirectory(dir, &names)) return;
    for (const std::string& name : names) {
      uint64_t id = 0;
      bool is_tmp = false;
      if (!tier::ParseSegmentFileName(name, base, &id, &is_tmp)) continue;
      if (is_tmp ||
          std::find(keep.begin(), keep.end(), id) == keep.end()) {
        std::remove((dir + "/" + name).c_str());
      }
    }
  }

  bool ShouldSplit(size_t shard_keys, size_t total,
                   size_t num_shards) const {
    if (shard_keys < options_.min_rebalance_keys) return false;
    if (options_.max_shard_keys > 0 &&
        shard_keys > options_.max_shard_keys) {
      return true;
    }
    const double mean = static_cast<double>(total) /
                        static_cast<double>(num_shards);
    return static_cast<double>(shard_keys) >
           options_.rebalance_skew * mean;
  }

  /// The inverse of the skew check: two adjacent cold shards whose
  /// combined size is still under the merge floor fold into one.
  bool ShouldMerge(size_t a_keys, size_t b_keys) const {
    return options_.merge_threshold_keys > 0 &&
           a_keys + b_keys < options_.merge_threshold_keys;
  }

  /// Post-commit split trigger. The absolute bound costs one load of the
  /// just-written shard's own size; the relative skew check must read
  /// every shard's size, so it runs only when `tick` is set — scalar
  /// commits set it on every kSkewCheckInterval-th commit into the shard,
  /// batched commits when the run crossed an interval boundary (both
  /// derived from the shard's own counter, so the trigger is
  /// deterministic under any interleaving) — the write hot path performs
  /// no cross-shard reads.
  static constexpr uint64_t kSkewCheckInterval = 1024;

  /// Records per chunk handed from a parallel-scan worker to the
  /// consuming caller. Large enough to amortize the queue mutex, small
  /// enough to keep the ordered merge streaming.
  static constexpr size_t kScanChunkRecords = 1024;

  void MaybeSplit(Table* table, Shard* shard, K hint_key, bool tick) {
    const size_t shard_keys = shard->index.size();
    if (shard_keys < options_.min_rebalance_keys) return;
    const bool over_absolute = options_.max_shard_keys > 0 &&
                               shard_keys > options_.max_shard_keys;
    if (!over_absolute && !tick) {
      return;
    }
    // The tick path reads every shard's size anyway; fold the pass into
    // one loop and publish the size-skew gauge (largest/mean x100, the
    // same shape ShouldSplit tests) for the health watchdog.
    size_t total = 0;
    size_t largest = 0;
    for (const auto& s : table->shards) {
      const size_t keys = s->TierSize();
      total += keys;
      largest = std::max(largest, keys);
    }
    if (tick && total > 0) {
      [[maybe_unused]] const double mean =
          static_cast<double>(total) /
          static_cast<double>(table->shards.size());
      ALEX_OBS_GAUGE_SET("shard.size_skew_x100",
                         100.0 * static_cast<double>(largest) / mean);
    }
    if (!ShouldSplit(shard_keys, total, table->shards.size())) {
      return;
    }
    std::unique_lock<std::mutex> rebalance(rebalance_mutex_,
                                           std::try_to_lock);
    if (!rebalance.owns_lock()) return;  // a rival transaction is running
    Table* current = table_.load(std::memory_order_seq_cst);
    const size_t idx = current->router.Route(hint_key);
    // Re-check under the lock: a rival may already have split this
    // range, or erases may have deflated it.
    if (!ShouldSplit(current->shards[idx]->index.size(),
                     TotalKeys(current), current->shards.size())) {
      return;
    }
    ExecuteTopologyTxn(TopologyOp::kSplit, current, idx, idx + 1,
                       std::max<size_t>(2, options_.split_ways));
  }

  /// Post-erase merge trigger, amortized exactly like the split skew
  /// check (`tick` derives from the shard's own counter). Picks the
  /// smaller adjacent neighbor as the co-victim. Unlike MaybeSplit there
  /// is no cheap pre-check against the caller's table: the decision needs
  /// the neighbors' sizes, which are only stable under the rebalance
  /// lock.
  void MaybeMerge(K hint_key, bool tick) {
    if (options_.merge_threshold_keys == 0) return;
    if (!tick) return;
    std::unique_lock<std::mutex> rebalance(rebalance_mutex_,
                                           std::try_to_lock);
    if (!rebalance.owns_lock()) return;
    Table* current = table_.load(std::memory_order_seq_cst);
    if (current->shards.size() < 2) return;
    const size_t idx = current->router.Route(hint_key);
    size_t lo;
    if (idx == 0) {
      lo = 0;
    } else if (idx + 1 == current->shards.size()) {
      lo = idx - 1;
    } else {
      lo = current->shards[idx - 1]->TierSize() <=
                   current->shards[idx + 1]->TierSize()
               ? idx - 1
               : idx;
    }
    if (!ShouldMerge(current->shards[lo]->TierSize(),
                     current->shards[lo + 1]->TierSize())) {
      return;
    }
    // Topology transactions stream their victims' ConcurrentAlex trees;
    // promote a cold victim first (a merge victim is tiny by
    // definition, so this is cheap and rare).
    for (size_t i = lo; i < lo + 2; ++i) {
      if (current->shards[i]->cold() &&
          PromoteShardLocked(i) != core::SnapshotStatus::kOk) {
        return;
      }
    }
    current = table_.load(std::memory_order_seq_cst);
    ExecuteTopologyTxn(TopologyOp::kMerge, current, lo, lo + 2, 1);
  }

  /// Which maintenance module a topology transaction runs; all three
  /// share every step of the protocol below.
  enum class TopologyOp { kSplit, kMerge, kRebalance };

  /// The one protocol every topology change runs through: replaces the
  /// adjacent victim shards [lo, hi) of `table` (the current table,
  /// loaded under rebalance_mutex_) with `ways` children holding the
  /// same keys, evenly partitioned. Caller holds rebalance_mutex_ and
  /// an epoch guard. Returns true when the replacement table was
  /// published; false aborts cleanly (too few keys to partition, or
  /// child log files could not be opened).
  ///
  /// The protocol's invariants are asserted here and nowhere else:
  ///   - victims' gates are drained (held exclusive) before their logs
  ///     are read, and stay held until after the seal;
  ///   - the seal LSN equals the publish LSN — no record can land in a
  ///     victim's log between the drain and its seal;
  ///   - parents are retired only after every child's segment file is
  ///     durable in the directory (ShardLog::Open fsyncs the directory
  ///     entry before returning).
  bool ExecuteTopologyTxn(TopologyOp op, Table* table, size_t lo,
                          size_t hi, size_t ways) {
    assert(lo < hi && hi <= table->shards.size());
    assert(ways >= 1);
    // Victims must be resident: the build step streams their trees, and
    // a cold shard's log/segment hand-off is the tier transitions' job.
    // Callers promote first (MaybeMerge) or simply skip cold shards.
    for (size_t i = lo; i < hi; ++i) {
      if (table->shards[i]->cold()) return false;
    }
    // Drain: victims' write gates exclusive, ascending — in-flight
    // writers finish, new ones wait here or re-route after publish.
    std::vector<std::unique_lock<std::shared_mutex>> gates;
    gates.reserve(hi - lo);
    for (size_t i = lo; i < hi; ++i) {
      gates.emplace_back(table->shards[i]->write_gate);
    }
    // With the gates drained the victims' logs cannot move: capture
    // their LSNs now and assert them unchanged at the seal.
    std::vector<uint64_t> parent_ids;
    std::vector<uint64_t> drained_lsns;
    for (size_t i = lo; i < hi; ++i) {
      const auto& log = table->shards[i]->log;
      if (log != nullptr) {
        parent_ids.push_back(log->wal_id());
        drained_lsns.push_back(log->last_lsn());
      }
    }
    // Build: stream the write-quiescent victims (adjacent ascending
    // ranges, so shard order is key order) straight into the children's
    // bulk-load arrays through the visitor scan — no intermediate
    // pair buffer, each record copied exactly once. The drained gates
    // make the victim sizes exact, so every child's cut is known before
    // the stream starts; the cut key observed when the stream crosses a
    // child boundary becomes that child's split key.
    size_t n = 0;
    for (size_t i = lo; i < hi; ++i) n += table->shards[i]->index.size();
    // A split needs at least one key per child to cut its split keys
    // from; a merge (one child) works even on empty victims.
    if (ways > 1 && n < ways) return false;  // abort; gates release
    std::vector<K> split_keys;
    split_keys.reserve(ways - 1);
    std::vector<std::vector<K>> part_keys(ways);
    std::vector<std::vector<P>> part_payloads(ways);
    for (size_t j = 0; j < ways; ++j) {
      const size_t quota = (j + 1) * n / ways - j * n / ways;
      part_keys[j].reserve(quota);
      part_payloads[j].reserve(quota);
    }
    size_t child_idx = 0;
    // First global record index belonging to the next child; n >= ways
    // (checked above) guarantees every child's cut is distinct, so a
    // single comparison per record advances the target correctly.
    size_t next_cut = ways > 1 ? n / ways : n;
    size_t streamed = 0;
    for (size_t i = lo; i < hi; ++i) {
      table->shards[i]->index.Scan(
          std::numeric_limits<K>::lowest(), std::numeric_limits<K>::max(),
          [&](const K& key, const P& payload) {
            if (streamed == next_cut && child_idx + 1 < ways) {
              ++child_idx;
              next_cut = (child_idx + 1) * n / ways;
              split_keys.push_back(key);
            }
            part_keys[child_idx].push_back(key);
            part_payloads[child_idx].push_back(payload);
            ++streamed;
          });
    }
    assert(streamed == n);
    (void)streamed;
    std::vector<std::shared_ptr<Shard>> children;
    children.reserve(ways);
    for (size_t j = 0; j < ways; ++j) {
      auto child = std::make_shared<Shard>(options_.shard_config, &epoch_);
      child->index.BulkLoad(part_keys[j].data(), part_payloads[j].data(),
                            part_keys[j].size());
      // Return each child's build arrays as soon as it is loaded, so the
      // transaction's peak extra memory is the partitions plus one
      // child — not every child at once.
      std::vector<K>().swap(part_keys[j]);
      std::vector<P>().swap(part_payloads[j]);
      children.push_back(std::move(child));
    }
    // Log: fresh child logs whose lineage names every victim (the
    // multi-parent kTopology record), opened — and directory-fsynced —
    // before the children can become reachable. On failure the
    // transaction is simply abandoned (it is an optimization, and
    // running a shard unlogged is not an option). Callers keep the
    // victim count within the record's parent cap.
    assert(parent_ids.size() <= wal::kMaxTopologyParents);
    if (wal_enabled_ && !parent_ids.empty() &&
        !AttachFreshLogs(&children, parent_ids)) {
      last_wal_error_.store(wal::WalStatus::kIoError,
                            std::memory_order_relaxed);
      return false;
    }
    // Publish: one store; readers pick the new table up immediately.
    auto* next = new Table();
    next->router = ShardRouter<K>::FitFromBoundaries(
        ShardRouter<K>::SpliceBoundaries(table->router.boundaries(), lo,
                                         hi, split_keys));
    next->shards.reserve(table->shards.size() - (hi - lo) + ways);
    next->shards.insert(next->shards.end(), table->shards.begin(),
                        table->shards.begin() +
                            static_cast<std::ptrdiff_t>(lo));
    next->shards.insert(next->shards.end(), children.begin(),
                        children.end());
    next->shards.insert(next->shards.end(),
                        table->shards.begin() +
                            static_cast<std::ptrdiff_t>(hi),
                        table->shards.end());
    table_.store(next, std::memory_order_seq_cst);
    // Retire + seal: victims re-route stragglers, and each victim's log
    // is sealed at the publish LSN — the drain guarantees no record
    // landed since the capture above, which is the invariant that lets
    // recovery treat "sealed log + children" as one atomic hand-off.
    size_t logged = 0;
    for (size_t i = lo; i < hi; ++i) {
      Shard* victim = table->shards[i].get();
      victim->retired.store(true, std::memory_order_seq_cst);
      if (victim->log != nullptr) {
        assert(victim->log->last_lsn() == drained_lsns[logged] &&
               "a record landed in a drained victim before its seal");
        (void)drained_lsns;
        retired_commit_wait_.Merge(victim->log->CommitWaitHistogram());
        victim->log->Seal();
        ++logged;
      }
    }
    (void)logged;
    switch (op) {
      case TopologyOp::kSplit:
        rebalances_.fetch_add(1, std::memory_order_relaxed);
        ALEX_OBS_COUNTER_INC("shard.topology_splits");
        ALEX_OBS_EVENT(obs::EventType::kTopologySplit, lo,
                       parent_ids.empty() ? 0 : parent_ids[0],
                       drained_lsns.empty() ? 0 : drained_lsns[0], hi - lo,
                       ways);
        break;
      case TopologyOp::kMerge:
        merges_.fetch_add(1, std::memory_order_relaxed);
        ALEX_OBS_COUNTER_INC("shard.topology_merges");
        ALEX_OBS_EVENT(obs::EventType::kTopologyMerge, lo,
                       parent_ids.empty() ? 0 : parent_ids[0],
                       drained_lsns.empty() ? 0 : drained_lsns[0], hi - lo,
                       ways);
        break;
      case TopologyOp::kRebalance:
        ALEX_OBS_COUNTER_INC("shard.topology_rebalances");
        ALEX_OBS_EVENT(obs::EventType::kTopologyRebalance, lo,
                       parent_ids.empty() ? 0 : parent_ids[0],
                       drained_lsns.empty() ? 0 : drained_lsns[0], hi - lo,
                       ways);
        break;
    }
    topology_epoch_.fetch_add(1, std::memory_order_relaxed);
    // The old table (and, once no newer table shares them, its replaced
    // shards) is freed only after every reader that could hold it
    // unpins. The gates release on scope exit, after the seal.
    epoch_.Retire(table);
    epoch_.TryReclaim();
    return true;
  }

  ShardedOptions options_;
  // Cold-tier block cache; mutable because the lock-free read path
  // (const) pins blocks through it.
  mutable tier::BlockCache block_cache_;
  mutable util::EpochManager epoch_;
  // Serializes table replacement (rebalance, bulk load, save/load). Never
  // touched by point reads or writes.
  mutable std::mutex rebalance_mutex_;
  std::atomic<Table*> table_{nullptr};
  std::atomic<uint64_t> rebalances_{0};
  std::atomic<uint64_t> merges_{0};
  // Splits + merges + rebalances ever committed; checkpoints persist it
  // and LoadFrom restores it (monotone across restarts).
  std::atomic<uint64_t> topology_epoch_{0};
  // WAL configuration; all guarded by rebalance_mutex_ (every site that
  // enables logging, allocates a wal id, or checkpoints holds it).
  std::string wal_prefix_;
  wal::WalOptions wal_options_;
  bool wal_enabled_ = false;
  uint64_t next_wal_id_ = 1;
  std::atomic<wal::WalStatus> last_wal_error_{wal::WalStatus::kOk};
  // Commit-wait samples of logs sealed by topology transactions, bulk
  // loads and recoveries (their ShardLogs are dropped with their
  // tables); CommitWaitHistogram folds live logs on top.
  util::Log2Histogram retired_commit_wait_;
  // Next cold-segment id, guarded by rebalance_mutex_ (mutable: a
  // checkpoint — SaveToLocked, const — may need a fresh id to fold a
  // dirty overlay). Checkpoints persist it, LoadFrom restores it.
  mutable uint64_t next_segment_id_ = 1;
  std::atomic<uint64_t> demotions_{0};
  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> compactions_{0};
  // Background tiering thread (StartTiering/StopTiering).
  std::mutex tiering_mutex_;
  std::condition_variable tiering_cv_;
  std::thread tiering_thread_;
  bool tiering_stop_ = false;
};

}  // namespace alex::shard
